"""The fuzz loop: oracle gating, caching, fault catching, artifacts."""

import dataclasses
import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.api.problems import problem_fingerprint
from repro.api import solve as api_solve
from repro.fuzz import codec
from repro.fuzz.generators import FuzzSpec, generate
from repro.fuzz.runner import (
    FUZZ_ORACLES,
    FuzzCheck,
    execute_fuzz_check,
    fuzz_cache_key,
    lift_module,
    oracles_for_problem,
    replay_corpus,
    run_fuzz,
    run_oracle,
)
from repro.kodkod import ast
from repro.kodkod.bounds import Bounds
from repro.kodkod.universe import Universe

SRC = Path(__file__).resolve().parents[2] / "src"


def _formula_problem(num_atoms=5):
    """A formula problem with ``2 * num_atoms`` free tuples."""
    from repro.api.problems import FormulaProblem

    universe = Universe([f"a{i}" for i in range(num_atoms)])
    bounds = Bounds(universe)
    r = ast.Relation("r", 1)
    s = ast.Relation("s", 1)
    bounds.bound(r, universe.empty(1), universe.all_tuples(1))
    bounds.bound(s, universe.empty(1), universe.all_tuples(1))
    return FormulaProblem(ast.Some(r), bounds)


class TestOracleSelection:
    def test_formula_oracles(self):
        problem = generate(FuzzSpec.make("formula", 0, size=2))
        names = oracles_for_problem(problem)
        assert "encodings" in names
        assert "symmetry" in names
        assert "explorer" not in names

    def test_session_oracle_is_gated_by_free_tuples(self):
        small = _formula_problem(num_atoms=3)   # 6 free tuples
        large = _formula_problem(num_atoms=6)   # 12 free tuples
        assert "session" in oracles_for_problem(small)
        assert "session" not in oracles_for_problem(large)

    def test_explorer_oracle_is_gated_by_size(self):
        for seed in range(10):
            problem = generate(FuzzSpec.make("protocol", seed, size=5))
            names = oracles_for_problem(problem)
            assert "engines" in names
            if "explorer" in names:
                assert len(problem.network.agents()) <= 3
                assert len(problem.items) <= 2

    def test_modules_route_to_formula_oracles(self):
        problem = generate(FuzzSpec.make("module", 0, size=2))
        assert "encodings" in oracles_for_problem(problem)

    def test_unknown_oracle_rejected(self):
        with pytest.raises(ValueError, match="unknown fuzz oracle"):
            run_oracle("haruspex", _formula_problem())

    def test_kind_mismatch_rejected(self):
        problem = generate(FuzzSpec.make("protocol", 0, size=2))
        with pytest.raises(ValueError, match="checks FormulaProblem"):
            run_oracle("encodings", problem)


class TestLiftModule:
    def test_lifted_run_problem_matches_facade_verdict(self):
        for seed in range(6):
            problem = generate(FuzzSpec.make("module", seed, size=3))
            facade = api_solve(problem)
            lifted = api_solve(lift_module(problem))
            assert facade.satisfiable == lifted.satisfiable, seed

    def test_every_oracle_agrees_on_lifted_modules(self):
        for seed in range(4):
            problem = generate(FuzzSpec.make("module", seed, size=2))
            for name in oracles_for_problem(problem):
                outcome = run_oracle(name, problem, seed=seed)
                assert outcome.agree, (seed, name, outcome.detail)


class TestRunFuzz:
    def test_small_sweep_is_clean_and_exact_budget(self, tmp_path):
        report = run_fuzz(seed=0, budget=25, shards=1,
                          cache_dir=tmp_path / "cache")
        assert report.total == 25
        assert report.clean
        assert report.generations >= 1
        assert report.coverage_points > 0
        assert report.corpus_size > 0

    def test_warm_rerun_is_all_cache_hits_with_identical_rows(self, tmp_path):
        cold = run_fuzz(seed=3, budget=20, shards=1,
                        cache_dir=tmp_path / "cache")
        warm = run_fuzz(seed=3, budget=20, shards=1,
                        cache_dir=tmp_path / "cache")
        assert warm.cache_hits == warm.total == 20
        assert warm.executed == 0
        assert ([(c.label, c.oracle, c.agree) for c in cold.checks]
                == [(c.label, c.oracle, c.agree) for c in warm.checks])

    def test_sharded_run_matches_inline_run(self, tmp_path):
        """The input stream must be shard-independent, including shard
        counts large enough that a shard-coupled generation size would
        change corpus-evolution timing (guards the constant batch)."""
        inline = run_fuzz(seed=5, budget=40, shards=1, cache_dir=None)
        sharded = run_fuzz(seed=5, budget=40, shards=4, cache_dir=None)
        assert ([(c.label, c.oracle, c.agree) for c in inline.checks]
                == [(c.label, c.oracle, c.agree) for c in sharded.checks])

    def test_budget_must_be_positive(self):
        with pytest.raises(ValueError, match="budget must be positive"):
            run_fuzz(budget=0)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown kind"):
            run_fuzz(budget=1, kinds=("sonnets",))

    def test_unknown_fault_rejected(self):
        with pytest.raises(ValueError, match="unknown fault"):
            run_fuzz(budget=1, inject="gremlin")


class TestFaultInjection:
    def test_injected_fault_is_caught_and_shrunk_small(self, tmp_path):
        """The subsystem's acceptance gate: an armed fault is caught and
        the reproducer shrinks to <= 5 nodes/agents."""
        report = run_fuzz(seed=0, budget=24, shards=1, cache_dir=None,
                          kinds=("formula",), inject="conjunction")
        assert report.disagreements
        for entry in report.disagreements:
            assert entry.fault == "conjunction"
            assert entry.size_after <= 5
            rebuilt = codec.problem_from_json(entry.shrunk)
            assert not run_oracle(entry.oracle, rebuilt,
                                  fault="conjunction").agree

    def test_fault_catch_is_reproducible_across_two_runs(self):
        def signature(report):
            return [
                (d.label, d.oracle, d.size_after,
                 json.dumps(d.shrunk, sort_keys=True))
                for d in report.disagreements
            ]

        first = run_fuzz(seed=0, budget=24, shards=1, cache_dir=None,
                         kinds=("formula",), inject="conjunction")
        second = run_fuzz(seed=0, budget=24, shards=1, cache_dir=None,
                          kinds=("formula",), inject="conjunction")
        assert signature(first) == signature(second)
        assert first.disagreements

    def test_protocol_fault_shrinks_to_two_agents(self):
        report = run_fuzz(seed=1, budget=16, shards=1, cache_dir=None,
                          kinds=("protocol",), inject="protocol-pair")
        assert report.disagreements
        for entry in report.disagreements:
            assert entry.size_after <= 5
            rebuilt = codec.problem_from_json(entry.shrunk)
            assert len(rebuilt.network.agents()) == 2

    def test_cache_is_bypassed_while_fault_is_armed(self, tmp_path):
        cache_dir = tmp_path / "cache"
        run_fuzz(seed=2, budget=10, shards=1, cache_dir=cache_dir,
                 inject="conjunction")
        assert not cache_dir.exists()

    def test_artifacts_written_for_each_failure(self, tmp_path):
        arts = tmp_path / "arts"
        report = run_fuzz(seed=0, budget=24, shards=1, cache_dir=None,
                          kinds=("formula",), inject="conjunction",
                          artifacts_dir=arts)
        assert report.disagreements
        for entry in report.disagreements:
            assert entry.repro_path is not None
            assert Path(entry.repro_path).is_file()
        # One script per failure: labels are not unique, so the stems
        # carry a content hash to avoid clobbering.
        paths = {entry.repro_path for entry in report.disagreements}
        assert len(paths) == len(report.disagreements)
        corpus_files = list(arts.glob("*.json"))
        assert corpus_files

    def test_emitted_repro_script_reproduces_in_subprocess(self, tmp_path):
        arts = tmp_path / "arts"
        report = run_fuzz(seed=0, budget=24, shards=1, cache_dir=None,
                          kinds=("formula",), inject="conjunction",
                          artifacts_dir=arts)
        script = Path(report.disagreements[0].repro_path)
        proc = subprocess.run(
            [sys.executable, str(script)],
            env={"PYTHONPATH": str(SRC), "PATH": "/usr/bin:/bin"},
            capture_output=True, text=True, timeout=120,
        )
        assert proc.returncode == 1, proc.stdout + proc.stderr
        assert "agree: False" in proc.stdout

    def test_replay_on_missing_directory_fails_loudly(self, tmp_path):
        """An empty replay must not let the CI corpus gate go green."""
        with pytest.raises(ValueError, match="no corpus entries"):
            replay_corpus(tmp_path / "no-such-corpus")

    def test_replayed_artifacts_reproduce_with_fault_and_pass_without(
            self, tmp_path):
        arts = tmp_path / "arts"
        run_fuzz(seed=0, budget=24, shards=1, cache_dir=None,
                 kinds=("formula",), inject="conjunction", artifacts_dir=arts)
        with_fault = replay_corpus(arts, inject="conjunction")
        assert with_fault.disagreements
        without = replay_corpus(arts)
        assert without.clean


class TestCrashHandling:
    def test_oracle_crash_is_recorded_not_raised(self):
        def detonate(problem, seed):
            raise RuntimeError("kaboom")

        original = FUZZ_ORACLES["encodings"]
        FUZZ_ORACLES["encodings"] = dataclasses.replace(
            original, run=detonate)
        try:
            report = run_fuzz(seed=0, budget=12, shards=1, cache_dir=None,
                              kinds=("formula",))
        finally:
            FUZZ_ORACLES["encodings"] = original
        assert not report.clean
        assert report.errors
        assert any("kaboom" in (c.error or "") for c in report.errors)
        # Crashing inputs are shrunk too (predicate: same exception head).
        crash_entries = [d for d in report.disagreements
                         if d.error is not None]
        assert crash_entries

    def test_execute_fuzz_check_captures_bad_tasks(self):
        payload = execute_fuzz_check({
            "label": "bad", "kind": "formula",
            "payload": {"problem": {"kind": "nonsense"}},
            "oracle": "encodings", "seed": 0, "fault": None,
        })
        assert payload["error"] is not None
        row = FuzzCheck.from_json(payload)
        assert not row.ok


class TestCacheKeys:
    def test_key_varies_with_oracle_seed_and_payload(self):
        task = {"payload": {"spec": FuzzSpec.make("formula", 0).as_dict()},
                "oracle": "encodings", "seed": 0}
        assert fuzz_cache_key(task) == fuzz_cache_key(dict(task))
        assert fuzz_cache_key({**task, "oracle": "symmetry"}) \
            != fuzz_cache_key(task)
        assert fuzz_cache_key({**task, "seed": 1}) != fuzz_cache_key(task)
        other = {**task,
                 "payload": {"spec": FuzzSpec.make("formula", 1).as_dict()}}
        assert fuzz_cache_key(other) != fuzz_cache_key(task)


class TestFuzzCheckRoundTrip:
    def test_json_round_trip(self):
        row = FuzzCheck(label="x", kind="formula", oracle="encodings",
                        agree=True, detail={"n": 1}, coverage=("a", "b"),
                        seconds=0.5)
        back = FuzzCheck.from_json(row.to_json())
        assert back == row
