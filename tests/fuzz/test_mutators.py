"""Mutation validity, determinism and coverage signatures."""

import random

import pytest

from repro.api.problems import (
    FormulaProblem,
    ProtocolProblem,
    problem_fingerprint,
)
from repro.fuzz.generators import FuzzSpec, generate
from repro.fuzz.mutators import (
    FORMULA_MUTATIONS,
    PROTOCOL_MUTATIONS,
    coverage_signature,
    mutate_problem,
)
from repro.fuzz.runner import lift_module


class TestMutationValidity:
    @pytest.mark.parametrize("kind", ["formula", "protocol"])
    def test_mutants_are_well_formed_problems(self, kind):
        """Every produced mutant decodes into a real, fingerprintable
        problem — ill-formed trees must be discarded inside the mutator."""
        for seed in range(10):
            problem = generate(FuzzSpec.make(kind, seed, size=4))
            rng = random.Random(seed)
            for _ in range(5):
                mutated = mutate_problem(problem, rng)
                if mutated is None:
                    continue
                mutant, name = mutated
                assert type(mutant) is type(problem)
                problem_fingerprint(mutant)  # raises on malformed output

    def test_module_problems_are_not_mutated_directly(self):
        problem = generate(FuzzSpec.make("module", 0, size=3))
        assert mutate_problem(problem, random.Random(0)) is None

    def test_lifted_module_problems_are_mutable(self):
        problem = lift_module(generate(FuzzSpec.make("module", 0, size=3)))
        mutated = mutate_problem(problem, random.Random(0))
        assert mutated is not None
        assert isinstance(mutated[0], FormulaProblem)

    def test_mutation_is_deterministic_given_rng_state(self):
        problem = generate(FuzzSpec.make("formula", 5, size=4))
        a = mutate_problem(problem, random.Random(42))
        b = mutate_problem(problem, random.Random(42))
        assert (a is None) == (b is None)
        if a is not None:
            assert a[1] == b[1]
            assert problem_fingerprint(a[0]) == problem_fingerprint(b[0])

    def test_mutants_usually_differ_from_parent(self):
        problem = generate(FuzzSpec.make("formula", 3, size=4))
        parent_print = problem_fingerprint(problem)
        changed = 0
        for seed in range(12):
            mutated = mutate_problem(problem, random.Random(seed))
            if mutated and problem_fingerprint(mutated[0]) != parent_print:
                changed += 1
        assert changed >= 6

    def test_every_formula_mutation_is_reachable(self):
        seen: set[str] = set()
        for seed in range(60):
            problem = generate(FuzzSpec.make(
                "formula", seed % 15, size=4,
                features=("partial_instance", "negation", "quantifier",
                          "union", "join", "closure")))
            mutated = mutate_problem(problem, random.Random(seed))
            if mutated:
                seen.add(mutated[1])
        assert seen >= set(FORMULA_MUTATIONS) - {"drop_part"}, seen

    def test_every_protocol_mutation_is_reachable(self):
        seen: set[str] = set()
        for seed in range(60):
            problem = generate(FuzzSpec.make("protocol", seed % 10, size=4))
            mutated = mutate_problem(problem, random.Random(seed))
            if mutated:
                seen.add(mutated[1])
        assert seen == set(PROTOCOL_MUTATIONS)

    def test_protocol_mutants_keep_every_agent_policied(self):
        for seed in range(10):
            problem = generate(FuzzSpec.make("protocol", seed, size=4))
            mutated = mutate_problem(problem, random.Random(seed))
            if mutated is None:
                continue
            mutant = mutated[0]
            assert isinstance(mutant, ProtocolProblem)
            # ProtocolProblem.__post_init__ enforces this; double-check.
            assert set(mutant.network.agents()) <= set(mutant.policies)

    def test_drop_agent_keeps_network_connected(self):
        for seed in range(30):
            problem = generate(FuzzSpec.make("protocol", seed, size=5))
            mutated = mutate_problem(problem, random.Random(seed * 7))
            if mutated and mutated[1] == "drop_agent":
                # AgentNetwork's constructor enforces connectivity; reaching
                # here means the mutant was buildable.
                assert len(mutated[0].network.agents()) == \
                    len(problem.network.agents()) - 1


class TestCoverageSignature:
    def test_numeric_fields_bucket_by_power_of_two(self):
        sig = coverage_signature("o", {"conflicts": 5})
        assert sig == ("o:conflicts~3",)
        assert coverage_signature("o", {"conflicts": 8}) == ("o:conflicts~4",)
        # Same bucket: 5 and 7 both have bit_length 3.
        assert coverage_signature("o", {"conflicts": 7}) == sig

    def test_bools_and_short_strings_pass_through(self):
        sig = coverage_signature("o", {"truncated": False, "mode": "pg"})
        assert "o:truncated=False" in sig
        assert "o:mode=pg" in sig

    def test_nested_dicts_are_flattened(self):
        sig = coverage_signature("o", {"gates": {"and": 4, "or": 1}})
        assert "o:gates.and~3" in sig
        assert "o:gates.or~1" in sig

    def test_signature_is_sorted_and_deterministic(self):
        detail = {"b": 1, "a": 2, "flag": True}
        assert (coverage_signature("o", detail)
                == coverage_signature("o", dict(reversed(detail.items()))))
        assert list(coverage_signature("o", detail)) == sorted(
            coverage_signature("o", detail))

    def test_long_strings_are_ignored(self):
        assert coverage_signature("o", {"trace": "x" * 100}) == ()
