"""Tier-1 replay of the checked-in regression corpus.

Every entry in ``tests/fuzz/corpus`` is either a shrunk past-failure
shape or a hand-curated edge case (the trivially-true/false translation
edges, exact bounds, empty domains); replaying them through their
oracles on every test run keeps those behaviours pinned.
"""

import json
from pathlib import Path

import pytest

from repro.fuzz.runner import replay_corpus

CORPUS = Path(__file__).parent / "corpus"
ENTRIES = sorted(CORPUS.glob("*.json"))


class TestCorpusIsWellFormed:
    def test_corpus_is_not_empty(self):
        assert len(ENTRIES) >= 8

    @pytest.mark.parametrize("path", ENTRIES, ids=lambda p: p.stem)
    def test_entry_schema(self, path):
        entry = json.loads(path.read_text(encoding="utf-8"))
        assert entry["label"]
        assert entry["note"], "every corpus entry needs a why"
        payload = entry["payload"]
        assert ("spec" in payload) ^ ("problem" in payload)

    def test_dimacs_edge_cases_are_present(self):
        """The satellite regression inputs stay checked in."""
        names = {path.stem for path in ENTRIES}
        assert "trivially-true-root" in names
        assert "trivially-false-root" in names


class TestReplay:
    def test_full_corpus_replays_clean(self):
        report = replay_corpus(CORPUS)
        assert report.corpus_size == len(ENTRIES)
        assert report.total >= len(ENTRIES)
        bad = [(c.label, c.oracle, c.error) for c in report.checks
               if not c.ok]
        assert report.clean, bad

    def test_replay_covers_every_entry(self):
        report = replay_corpus(CORPUS)
        replayed = {c.label for c in report.checks}
        expected = {json.loads(p.read_text())["label"] for p in ENTRIES}
        assert replayed == expected
