"""Generator determinism, swarm masks and well-formedness."""

import multiprocessing
from concurrent.futures import ProcessPoolExecutor

import pytest

from repro.api.problems import (
    FormulaProblem,
    ModuleProblem,
    ProtocolProblem,
    problem_fingerprint,
)
from repro.fuzz import codec
from repro.fuzz.generators import (
    FEATURE_POOLS,
    KINDS,
    MAX_SIZE,
    FuzzSpec,
    generate,
    swarm_mask,
)

EXPECTED_TYPES = {
    "formula": FormulaProblem,
    "module": ModuleProblem,
    "protocol": ProtocolProblem,
}


def _hash_and_fingerprint(spec_dict):
    """Spawn-pool worker: regenerate a spec and fingerprint its problem."""
    spec = FuzzSpec.from_dict(spec_dict)
    return spec.content_hash(), problem_fingerprint(generate(spec))


class TestFuzzSpec:
    def test_make_sorts_features(self):
        spec = FuzzSpec.make("formula", 0, features=("union", "closure"))
        assert spec.features == ("closure", "union")

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown problem kind"):
            FuzzSpec.make("nope", 0)

    def test_out_of_range_size_rejected(self):
        with pytest.raises(ValueError, match="size must be in"):
            FuzzSpec.make("formula", 0, size=MAX_SIZE + 1)

    def test_unknown_feature_rejected(self):
        with pytest.raises(ValueError, match="unknown feature"):
            FuzzSpec.make("formula", 0, features=("warp_drive",))

    def test_dict_round_trip(self):
        spec = FuzzSpec.make("protocol", 7, size=2)
        assert FuzzSpec.from_dict(spec.as_dict()) == spec

    def test_content_hash_is_stable_and_distinct(self):
        a = FuzzSpec.make("formula", 1)
        assert a.content_hash() == FuzzSpec.make("formula", 1).content_hash()
        assert a.content_hash() != FuzzSpec.make("formula", 2).content_hash()

    def test_label_mentions_kind_and_seed(self):
        assert FuzzSpec.make("module", 9, size=2).label() == "module#9s2"


class TestSwarmMasks:
    def test_mask_is_deterministic(self):
        assert swarm_mask("formula", 3) == swarm_mask("formula", 3)

    def test_mask_is_subset_of_pool(self):
        for kind in KINDS:
            for seed in range(20):
                assert set(swarm_mask(kind, seed)) <= set(FEATURE_POOLS[kind])

    def test_masks_vary_across_seeds(self):
        masks = {swarm_mask("formula", seed) for seed in range(20)}
        assert len(masks) > 5

    def test_every_feature_appears_in_some_mask(self):
        seen: set[str] = set()
        for seed in range(200):
            seen.update(swarm_mask("formula", seed))
        assert seen == set(FEATURE_POOLS["formula"])


class TestGeneration:
    @pytest.mark.parametrize("kind", KINDS)
    def test_generates_expected_problem_type(self, kind):
        for seed in range(10):
            problem = generate(FuzzSpec.make(kind, seed, size=3))
            assert isinstance(problem, EXPECTED_TYPES[kind])

    @pytest.mark.parametrize("kind", KINDS)
    def test_same_spec_same_fingerprint(self, kind):
        spec = FuzzSpec.make(kind, 11, size=3)
        assert (problem_fingerprint(generate(spec))
                == problem_fingerprint(generate(spec)))

    @pytest.mark.parametrize("kind", KINDS)
    def test_different_seed_different_problem(self, kind):
        prints = {
            problem_fingerprint(generate(FuzzSpec.make(kind, seed, size=3)))
            for seed in range(8)
        }
        assert len(prints) > 1

    def test_same_spec_identical_across_spawn_processes(self):
        """Same spec ⇒ identical problem in a fresh interpreter.

        Guards the fuzz cache keying the same way the campaign's spec
        test does: a spawn-started worker has a different string-hash
        seed, so reliance on builtin ``hash`` or incidental iteration
        order shows up as a mismatch here.
        """
        specs = [FuzzSpec.make(kind, seed, size=3)
                 for kind in KINDS for seed in (0, 1)]
        local = [
            (spec.content_hash(), problem_fingerprint(generate(spec)))
            for spec in specs
        ]
        context = multiprocessing.get_context("spawn")
        with ProcessPoolExecutor(max_workers=1,
                                 mp_context=context) as executor:
            remote = list(executor.map(
                _hash_and_fingerprint, [spec.as_dict() for spec in specs]))
        assert local == remote

    def test_disabled_features_never_appear(self):
        """An empty mask keeps every optional operator out of the tree."""
        gated_tags = {"transpose", "closure", "ite", "compr", "product",
                      "iden", "none", "union", "inter", "diff", "join",
                      "not", "forall", "exists", "card_eq", "card_ge",
                      "one", "lone"}
        for seed in range(20):
            spec = FuzzSpec.make("formula", seed, size=4, features=())
            problem = generate(spec)
            tree = codec.formula_to_tree(problem.formula)
            tags = {node.get("f") or node.get("e")
                    for _, node in codec.iter_subtrees(tree)}
            assert not (tags & gated_tags), tags & gated_tags

    def test_enabled_features_eventually_appear(self):
        spec_features = ("closure", "join", "quantifier", "cardinality")
        tags: set[str] = set()
        for seed in range(40):
            spec = FuzzSpec.make("formula", seed, size=4,
                                 features=spec_features)
            tree = codec.formula_to_tree(generate(spec).formula)
            tags.update(node.get("f") or node.get("e")
                        for _, node in codec.iter_subtrees(tree))
        assert "closure" in tags
        assert tags & {"forall", "exists"}
        assert tags & {"card_eq", "card_ge"}

    def test_partial_instance_feature_populates_lower_bounds(self):
        found = False
        for seed in range(30):
            spec = FuzzSpec.make("formula", seed, size=4,
                                 features=("partial_instance",))
            problem = generate(spec)
            if any(len(problem.bounds.lower(rel)) > 0
                   for rel in problem.bounds.relations()):
                found = True
                break
        assert found

    def test_formula_universe_stays_tractable(self):
        for seed in range(20):
            problem = generate(FuzzSpec.make("formula", seed, size=MAX_SIZE))
            assert len(problem.bounds.universe) <= 4

    def test_protocol_policies_are_submodular(self):
        """Generated protocols stay in the paper's convergence regime."""
        for seed in range(6):
            problem = generate(FuzzSpec.make("protocol", seed, size=4))
            for policy in problem.policies.values():
                assert policy.utility.is_submodular_on(
                    list(problem.items)[:4], 3)
                assert policy.rebid.value == "honest"
                assert not policy.release_outbid

    def test_protocol_sizes_bounded(self):
        for seed in range(20):
            problem = generate(FuzzSpec.make("protocol", seed, size=MAX_SIZE))
            assert 2 <= len(problem.network.agents()) <= 6
            assert 1 <= len(problem.items) <= 6

    def test_module_check_command_carries_goal(self):
        for seed in range(40):
            spec = FuzzSpec.make("module", seed, size=3,
                                 features=("check_command",))
            problem = generate(spec)
            assert problem.command == "check"
            assert problem.goal is not None

    def test_module_compiles_at_its_scope(self):
        for seed in range(10):
            problem = generate(FuzzSpec.make("module", seed, size=4))
            universe, bounds, facts = problem.module.compile(problem.scope)
            assert len(universe) >= 2
            assert list(bounds.relations())
