"""CLI smoke: ``python -m repro.fuzz`` end to end in subprocesses."""

import json
import os
import subprocess
import sys
from pathlib import Path

CORPUS = Path(__file__).parent / "corpus"
SRC = Path(__file__).resolve().parents[2] / "src"


def _run(args, cwd):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC)
    return subprocess.run(
        [sys.executable, "-m", "repro.fuzz", *args],
        cwd=cwd, env=env, capture_output=True, text=True, timeout=300,
    )


class TestCli:
    def test_clean_sweep_exits_zero_and_writes_artifact(self, tmp_path):
        proc = _run(["--seed", "0", "--budget", "15", "--shards", "1",
                     "--no-cache", "--json", "out.json"], tmp_path)
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "fuzz sweep: 15 checks" in proc.stdout
        assert "TOTAL" in proc.stdout
        artifact = json.loads((tmp_path / "out.json").read_text())
        assert artifact["benchmark"] == "fuzz"
        assert artifact["summary"]["totals"]["checks"] == 15
        assert artifact["summary"]["totals"]["disagreements"] == 0
        assert artifact["disagreements"] == []

    def test_cache_warms_across_invocations(self, tmp_path):
        cold = _run(["--seed", "1", "--budget", "12", "--shards", "1",
                     "--cache-dir", "cache", "--json", "a.json"], tmp_path)
        warm = _run(["--seed", "1", "--budget", "12", "--shards", "1",
                     "--cache-dir", "cache", "--json", "b.json"], tmp_path)
        assert cold.returncode == warm.returncode == 0
        artifact = json.loads((tmp_path / "b.json").read_text())
        assert artifact["cache_hits"] == 12

    def test_injected_fault_exits_nonzero_with_repro(self, tmp_path):
        proc = _run(["--seed", "0", "--budget", "24", "--shards", "1",
                     "--kinds", "formula", "--no-cache",
                     "--inject", "conjunction", "--artifacts", "arts",
                     "--json", "out.json"], tmp_path)
        assert proc.returncode == 1, proc.stdout + proc.stderr
        assert "DISAGREEMENT" in proc.stderr
        assert "repro:" in proc.stderr
        scripts = list((tmp_path / "arts").glob("*.repro.py"))
        assert scripts
        artifact = json.loads((tmp_path / "out.json").read_text())
        assert artifact["disagreements"]
        for entry in artifact["disagreements"]:
            assert entry["size_after"] <= 5

    def test_replay_mode_checks_the_corpus(self, tmp_path):
        proc = _run(["--replay", str(CORPUS), "--json", "replay.json"],
                    tmp_path)
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "corpus replay" in proc.stdout
        artifact = json.loads((tmp_path / "replay.json").read_text())
        assert artifact["summary"]["totals"]["checks"] > 0
        assert artifact["summary"]["totals"]["disagreements"] == 0

    def test_kinds_filter_restricts_the_sweep(self, tmp_path):
        proc = _run(["--seed", "2", "--budget", "10", "--shards", "1",
                     "--kinds", "protocol", "--no-cache",
                     "--json", "out.json"], tmp_path)
        assert proc.returncode == 0, proc.stdout + proc.stderr
        artifact = json.loads((tmp_path / "out.json").read_text())
        kinds = {cell["kind"] for cell in artifact["summary"]["cells"]}
        assert kinds == {"protocol"}

    def test_sharded_smoke(self, tmp_path):
        proc = _run(["--seed", "3", "--budget", "12", "--shards", "2",
                     "--no-cache", "--json", "out.json"], tmp_path)
        assert proc.returncode == 0, proc.stdout + proc.stderr
