"""Problem tree codec: round trips, tree utilities, script emission."""

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.api.problems import problem_fingerprint
from repro.fuzz import codec
from repro.fuzz.codec import CodecError
from repro.fuzz.generators import FuzzSpec, generate
from repro.fuzz.runner import lift_module
from repro.kodkod import ast

SRC = Path(__file__).resolve().parents[2] / "src"


class TestRoundTrip:
    @pytest.mark.parametrize("seed", range(8))
    def test_formula_problems_round_trip(self, seed):
        problem = generate(FuzzSpec.make("formula", seed, size=4))
        payload = codec.problem_to_json(problem)
        json.dumps(payload)  # must be JSON-able
        rebuilt = codec.problem_from_json(payload)
        assert problem_fingerprint(rebuilt) == problem_fingerprint(problem)

    @pytest.mark.parametrize("seed", range(8))
    def test_protocol_problems_round_trip(self, seed):
        problem = generate(FuzzSpec.make("protocol", seed, size=4))
        payload = codec.problem_to_json(problem)
        json.dumps(payload)
        rebuilt = codec.problem_from_json(payload)
        assert problem_fingerprint(rebuilt) == problem_fingerprint(problem)

    def test_lifted_module_problems_round_trip(self):
        problem = lift_module(generate(FuzzSpec.make("module", 3, size=3)))
        rebuilt = codec.problem_from_json(codec.problem_to_json(problem))
        assert problem_fingerprint(rebuilt) == problem_fingerprint(problem)

    @pytest.mark.parametrize("seed", range(8))
    def test_module_problems_round_trip(self, seed):
        """Direct module encoding preserves the fingerprint — which hashes
        the *compiled* universe/bounds/facts, so sigs, fields, implicit
        facts and the scope must all survive the wire."""
        problem = generate(FuzzSpec.make("module", seed, size=3))
        payload = codec.problem_to_json(problem)
        json.dumps(payload)  # must be JSON-able
        assert payload["kind"] == "module"
        rebuilt = codec.problem_from_json(payload)
        assert rebuilt.command == problem.command
        assert problem_fingerprint(rebuilt) == problem_fingerprint(problem)

    @pytest.mark.parametrize("seed", range(4))
    def test_module_round_trip_solves_identically(self, seed):
        from repro import api

        problem = generate(FuzzSpec.make("module", seed, size=2))
        rebuilt = codec.problem_from_json(codec.problem_to_json(problem))
        assert (api.solve(rebuilt).verdict
                == api.solve(problem).verdict)

    def test_module_facts_share_sig_relations(self):
        """Decoded fact/goal trees must reference the rebuilt module's own
        sig/field relation objects (compilation compares by identity)."""
        problem = generate(FuzzSpec.make("module", 3, size=3))
        rebuilt = codec.problem_from_json(codec.problem_to_json(problem))
        module_rels = {id(s.relation) for s in rebuilt.module.sigs}
        module_rels |= {id(f.relation) for s in rebuilt.module.sigs
                        for f in s.fields}
        names = {s.name for s in rebuilt.module.sigs}
        names |= {f.relation.name for s in rebuilt.module.sigs
                  for f in s.fields}
        trees = list(rebuilt.module.facts)
        if rebuilt.goal is not None:
            trees.append(rebuilt.goal)
        for formula in trees:
            for node in _walk_relations(formula):
                if node.name in names:
                    assert id(node) in module_rels

    def test_ordered_module_subclasses_are_rejected(self):
        from repro.alloylite import OrderedModule

        module = OrderedModule("ord")
        state = module.sig("State")
        module.ordering(state)
        from repro.api.problems import ModuleProblem

        with pytest.raises(CodecError, match="OrderedModule"):
            codec.problem_to_json(ModuleProblem(module))

    def test_relations_decode_to_shared_instances(self):
        """The same (name, arity) must decode to one Relation object —
        bounds and formulas compare relations by identity."""
        problem = generate(FuzzSpec.make("formula", 1, size=3))
        rebuilt = codec.problem_from_json(codec.problem_to_json(problem))
        formula_rels = {
            id(node) for node in _walk_relations(rebuilt.formula)
        }
        bound_rels = {id(rel) for rel in rebuilt.bounds.relations()}
        # Every relation the formula mentions is the bounds' own object.
        names_in_bounds = {rel.name for rel in rebuilt.bounds.relations()}
        for node in _walk_relations(rebuilt.formula):
            if node.name in names_in_bounds:
                assert id(node) in bound_rels


class TestMalformedTrees:
    def test_unknown_formula_tag(self):
        with pytest.raises(CodecError, match="unknown formula tag"):
            codec.problem_from_json({
                "kind": "formula",
                "formula": {"f": "xor"},
                "bounds": {"universe": ["a"], "relations": []},
            })

    def test_unknown_expression_tag(self):
        with pytest.raises(CodecError, match="unknown expression tag"):
            codec.problem_from_json({
                "kind": "formula",
                "formula": {"f": "some", "expr": {"e": "warp"}},
                "bounds": {"universe": ["a"], "relations": []},
            })

    def test_unknown_problem_kind(self):
        with pytest.raises(CodecError, match="unknown problem kind"):
            codec.problem_from_json({"kind": "haiku"})

    def test_module_with_undeclared_parent_sig(self):
        with pytest.raises(CodecError, match="undeclared sig"):
            codec.problem_from_json({
                "kind": "module",
                "sigs": [{"name": "B", "parent": "A",
                          "one": False, "abstract": False}],
                "fields": [], "facts": [],
                "command": "run", "goal": None, "scope": None,
            })

    def test_module_with_undeclared_field_column(self):
        with pytest.raises(CodecError, match="undeclared column sig"):
            codec.problem_from_json({
                "kind": "module",
                "sigs": [{"name": "A", "parent": None,
                          "one": False, "abstract": False}],
                "fields": [{"owner": "A", "name": "f",
                            "columns": ["Z"], "mult": "set"}],
                "facts": [],
                "command": "run", "goal": None, "scope": None,
            })

    def test_module_missing_sigs_key(self):
        with pytest.raises(CodecError, match="malformed module payload"):
            codec.problem_from_json({"kind": "module", "fields": []})

    def test_module_check_without_goal(self):
        """Problem-level validation surfaces as CodecError, mirroring the
        formula decoder's contract."""
        with pytest.raises(CodecError, match="requires a goal"):
            codec.problem_from_json({
                "kind": "module",
                "sigs": [{"name": "A", "parent": None,
                          "one": False, "abstract": False}],
                "fields": [], "facts": [],
                "command": "check", "goal": None, "scope": None,
            })

    def test_arity_mismatch_is_codec_error(self):
        tree = {"f": "subset",
                "left": {"e": "univ"},
                "right": {"e": "iden"}}
        with pytest.raises(CodecError):
            codec.problem_from_json({
                "kind": "formula", "formula": tree,
                "bounds": {"universe": ["a"], "relations": []},
            })

    def test_empty_conjunction_is_codec_error(self):
        with pytest.raises(CodecError, match="empty"):
            codec.problem_from_json({
                "kind": "formula",
                "formula": {"f": "and", "parts": []},
                "bounds": {"universe": ["a"], "relations": []},
            })

    def test_disconnected_protocol_is_codec_error(self):
        with pytest.raises(CodecError, match="malformed protocol"):
            codec.problem_from_json({
                "kind": "protocol",
                "agents": [0, 1, 2],
                "edges": [[0, 1]],
                "items": [],
                "policies": {},
            })


class TestTreeUtilities:
    def _tree(self):
        formula = ast.And([
            ast.Some(ast.Union(ast.Relation("r", 1), ast.Univ())),
            ast.Not(ast.No(ast.Relation("r", 1))),
        ])
        return codec.formula_to_tree(formula)

    def test_iter_subtrees_visits_every_node(self):
        tags = [node.get("f") or node.get("e")
                for _, node in codec.iter_subtrees(self._tree())]
        assert tags == ["and", "some", "union", "rel", "univ", "not", "no",
                        "rel"]

    def test_replace_at_is_non_destructive(self):
        tree = self._tree()
        replaced = codec.replace_at(tree, ("parts", 1), {"f": "true"})
        assert replaced["parts"][1] == {"f": "true"}
        assert tree["parts"][1]["f"] == "not"

    def test_subtree_at_inverts_paths(self):
        tree = self._tree()
        for path, node in codec.iter_subtrees(tree):
            assert codec.subtree_at(tree, path) is node

    def test_tree_arity_mirrors_ast_rules(self):
        cases = [
            ({"e": "iden"}, 2),
            ({"e": "none", "arity": 3}, 3),
            ({"e": "product", "left": {"e": "univ"},
              "right": {"e": "iden"}}, 3),
            ({"e": "join", "left": {"e": "univ"}, "right": {"e": "iden"}}, 1),
            ({"e": "compr", "decls": [["x", {"e": "univ"}]],
              "body": {"f": "true"}}, 1),
        ]
        for tree, expected in cases:
            assert codec.tree_arity(tree) == expected

    def test_has_unbound_vars(self):
        bound = codec.formula_to_tree(
            ast.Exists([(ast.Variable("x"), ast.Univ())],
                       ast.Some(ast.Variable("x"))))
        assert not codec.has_unbound_vars(bound)
        dangling = codec.formula_to_tree(ast.Some(ast.Variable("x")))
        assert codec.has_unbound_vars(dangling)

    def test_tree_size_counts_tagged_nodes(self):
        assert codec.tree_size({"f": "true"}) == 1
        assert codec.tree_size(self._tree()) == 8


class TestScriptEmission:
    def test_script_mentions_oracle_and_embeds_problem(self):
        problem = generate(FuzzSpec.make("formula", 2, size=2))
        payload = codec.problem_to_json(problem)
        script = codec.problem_to_script(payload, "encodings",
                                         label="unit test", seed=4)
        assert "encodings" in script
        assert "unit test" in script
        assert "problem_from_json" in script

    def test_script_runs_standalone_and_exits_zero_when_agreeing(
            self, tmp_path):
        problem = generate(FuzzSpec.make("formula", 2, size=2))
        payload = codec.problem_to_json(problem)
        path = tmp_path / "reproducer.py"
        path.write_text(codec.problem_to_script(
            payload, "encodings", filename=path.name), encoding="utf-8")
        proc = subprocess.run(
            [sys.executable, str(path)],
            env={"PYTHONPATH": str(SRC), "PATH": "/usr/bin:/bin"},
            capture_output=True, text=True, timeout=120,
        )
        assert proc.returncode == 0, proc.stderr
        assert "agree: True" in proc.stdout

    def test_script_with_fault_reproduces_disagreement(self, tmp_path):
        problem = codec.problem_from_json({
            "kind": "formula",
            "formula": {"f": "and", "parts": [{"f": "true"}, {"f": "true"}]},
            "bounds": {"universe": ["a0"], "relations": []},
        })
        payload = codec.problem_to_json(problem)
        path = tmp_path / "reproducer.py"
        path.write_text(codec.problem_to_script(
            payload, "encodings", fault="conjunction", filename=path.name),
            encoding="utf-8")
        proc = subprocess.run(
            [sys.executable, str(path)],
            env={"PYTHONPATH": str(SRC), "PATH": "/usr/bin:/bin"},
            capture_output=True, text=True, timeout=120,
        )
        assert proc.returncode == 1, proc.stdout + proc.stderr
        assert "agree: False" in proc.stdout


def _walk_relations(node):
    if isinstance(node, ast.Relation):
        yield node
        return
    for attr in ("left", "right", "inner", "expr", "cond", "then_expr",
                 "else_expr", "body"):
        child = getattr(node, attr, None)
        if child is not None and isinstance(child, (ast.Expr, ast.Formula)):
            yield from _walk_relations(child)
    for part in getattr(node, "parts", ()) or ():
        yield from _walk_relations(part)
    for _, domain in getattr(node, "decls", ()) or ():
        yield from _walk_relations(domain)
