"""Property test: replaying the journal reconstructs the queue exactly.

Every in-memory mutation the live queue makes must be derivable from the
events it journals — worker ids, lease bookkeeping, attempt budgets,
error strings, timestamps.  This drives a randomized operation sequence
(submits and resubmits, local and satellite claims, completions,
retryable and fatal failures, lease-expiry sweeps, heartbeats) against a
live queue, then replays its journal into a fresh :class:`JobQueue` and
asserts per-job state matches field for field.  Any transition that
mutates state without journaling enough to reproduce it fails here —
this is what pinned the resubmission attempt-reset bug and pins the
lease events now.
"""

import dataclasses
import random

import pytest

from repro.fuzz.codec import problem_to_json
from repro.fuzz.generators import FuzzSpec, generate
from repro.service.queue import RUNNING, JobQueue, LeaseError
from repro.service.schema import decode_submission

POOL = 8
"""Distinct jobs each history draws from (resubmission needs repeats)."""

OPS = 150
"""Random operations per history."""


def submissions():
    return [decode_submission({"problem": problem_to_json(
        generate(FuzzSpec.make("formula", seed)))})
        for seed in range(POOL)]


def snapshots(queue, ids, state=None):
    records = (queue.get(jid) for jid in ids)
    return [r for r in records
            if r is not None and (state is None or r.state == state)]


@pytest.mark.parametrize("seed", range(8))
def test_random_histories_replay_identically(tmp_path, seed):
    rng = random.Random(seed)
    max_attempts = rng.choice([1, 2, 3])
    queue = JobQueue(tmp_path, max_attempts=max_attempts)
    pool = submissions()
    ids = [sub.job_id for sub in pool]
    for _ in range(OPS):
        op = rng.randrange(8)
        if op in (0, 1):  # submit (also requeues errored jobs)
            queue.submit(rng.choice(pool))
        elif op == 2:  # local claim: no deadline
            queue.claim(rng.randrange(1, 4))
        elif op == 3:  # satellite claim, sometimes already-lapsed
            queue.claim(rng.randrange(1, 4),
                        worker=f"sat-{rng.randrange(3)}",
                        lease_seconds=rng.choice([0.001, 60.0]))
        elif op == 4:  # complete, with or without presenting the lease
            running = snapshots(queue, ids, RUNNING)
            if running:
                record = rng.choice(running)
                queue.complete(record.id,
                               lease=rng.choice([None, record.lease]))
        elif op == 5:  # fail: retryable or fatal, oversized error string
            running = snapshots(queue, ids, RUNNING)
            if running:
                record = rng.choice(running)
                queue.fail(record.id, "x" * rng.choice([5, 900]),
                           retryable=rng.random() < 0.7,
                           lease=rng.choice([None, record.lease]))
        elif op == 6:  # sweep whatever 0.001s leases have lapsed
            queue.expire_leases()
        elif op == 7:  # heartbeat a random live lease
            running = snapshots(queue, ids, RUNNING)
            if running:
                record = rng.choice(running)
                if record.lease is not None:
                    try:
                        queue.heartbeat(record.lease, 60.0)
                    except LeaseError:
                        pass  # lapsed between snapshot and beat
    # Resolve everything still in flight: replay deliberately requeues
    # running jobs (a crash lapses their leases), so strict parity is
    # asserted over histories that end with nothing running.
    for record in snapshots(queue, ids, RUNNING):
        if rng.random() < 0.5:
            queue.complete(record.id)
        else:
            queue.fail(record.id, "wind-down", retryable=False)
    live = {jid: dataclasses.asdict(queue.get(jid))
            for jid in ids if queue.get(jid) is not None}
    live_counts = queue.counts()
    assert live, "a history must touch at least one job"
    queue.close()

    revived = JobQueue(tmp_path, max_attempts=max_attempts)
    assert revived.recovered == 0
    assert revived.counts() == live_counts
    assert len(revived) == len(live)
    for jid, expected in live.items():
        assert dataclasses.asdict(revived.get(jid)) == expected, (
            f"job {jid} diverged after replay")
    revived.close()
