"""JobQueue state transitions, journal durability and crash recovery."""

import json

import pytest

from repro.fuzz.codec import problem_to_json
from repro.fuzz.generators import FuzzSpec, generate
from repro.service.queue import DONE, ERROR, PENDING, RUNNING, JobQueue
from repro.service.queue import QueueError
from repro.service.schema import decode_submission


def submission(seed=0, **extra):
    payload = {"problem": problem_to_json(
        generate(FuzzSpec.make("formula", seed)))}
    payload.update(extra)
    return decode_submission(payload)


class TestTransitions:
    def test_happy_path(self, tmp_path):
        queue = JobQueue(tmp_path)
        record, created = queue.submit(submission())
        assert created and record.state == PENDING
        claimed = queue.claim(10)
        assert [r.id for r in claimed] == [record.id]
        assert record.state == RUNNING and record.attempts == 1
        queue.complete(record.id)
        assert record.state == DONE
        assert queue.counts() == {"pending": 0, "running": 0,
                                  "done": 1, "error": 0}

    def test_submission_is_idempotent(self, tmp_path):
        queue = JobQueue(tmp_path)
        first, created1 = queue.submit(submission())
        second, created2 = queue.submit(submission())
        assert created1 and not created2
        assert first is second
        assert len(queue) == 1

    def test_claim_respects_the_limit(self, tmp_path):
        queue = JobQueue(tmp_path)
        for seed in range(5):
            queue.submit(submission(seed))
        assert len(queue.claim(2)) == 2
        assert len(queue.claim(10)) == 3
        assert queue.claim(10) == []

    def test_retryable_failure_requeues_until_the_cap(self, tmp_path):
        queue = JobQueue(tmp_path, max_attempts=2)
        record, _ = queue.submit(submission())
        queue.claim(1)
        queue.fail(record.id, "stalled", retryable=True)
        assert record.state == PENDING and record.attempts == 1
        queue.claim(1)
        queue.fail(record.id, "stalled again", retryable=True)
        assert record.state == ERROR
        assert "stalled again" in record.error

    def test_non_retryable_failure_parks_immediately(self, tmp_path):
        queue = JobQueue(tmp_path, max_attempts=5)
        record, _ = queue.submit(submission())
        queue.claim(1)
        queue.fail(record.id, "deterministic crash", retryable=False)
        assert record.state == ERROR and record.attempts == 1

    def test_resubmitting_an_errored_job_requeues_it(self, tmp_path):
        queue = JobQueue(tmp_path, max_attempts=1)
        record, _ = queue.submit(submission())
        queue.claim(1)
        queue.fail(record.id, "boom", retryable=True)
        assert record.state == ERROR
        again, created = queue.submit(submission())
        assert again is record and not created
        assert record.state == PENDING and record.attempts == 0

    def test_impossible_transitions_raise(self, tmp_path):
        queue = JobQueue(tmp_path)
        with pytest.raises(QueueError, match="unknown job"):
            queue.complete("nope")
        record, _ = queue.submit(submission())
        with pytest.raises(QueueError, match="pending, expected running"):
            queue.complete(record.id)

    def test_by_fingerprint_indexes_every_job(self, tmp_path):
        queue = JobQueue(tmp_path)
        plain = submission()
        tuned = submission(options={"symmetry": 0})
        queue.submit(plain)
        queue.submit(tuned)
        assert plain.fingerprint == tuned.fingerprint
        assert len(queue.by_fingerprint(plain.fingerprint)) == 2
        assert queue.by_fingerprint("f" * 64) == []


class TestRecovery:
    def test_replay_restores_finished_and_pending_jobs(self, tmp_path):
        queue = JobQueue(tmp_path)
        done, _ = queue.submit(submission(0))
        pending, _ = queue.submit(submission(1))
        queue.claim(1)
        queue.complete(done.id)
        queue.close()

        revived = JobQueue(tmp_path)
        assert revived.get(done.id).state == DONE
        assert revived.get(pending.id).state == PENDING
        assert revived.recovered == 0
        revived.close()

    def test_running_jobs_are_requeued_after_a_crash(self, tmp_path):
        queue = JobQueue(tmp_path)
        record, _ = queue.submit(submission())
        queue.claim(1)
        assert record.state == RUNNING
        queue.close()  # the process dies here; no done/error was journaled

        revived = JobQueue(tmp_path)
        assert revived.get(record.id).state == PENDING
        assert revived.get(record.id).attempts == 1  # the lost attempt
        assert revived.recovered == 1
        revived.close()

    def test_crash_looping_jobs_are_parked_at_the_cap(self, tmp_path):
        for crash in range(2):
            queue = JobQueue(tmp_path, max_attempts=2)
            queue.submit(submission())
            queue.claim(1)
            queue.close()
        revived = JobQueue(tmp_path, max_attempts=2)
        record = next(iter(revived.by_fingerprint(
            submission().fingerprint)))
        assert record.state == ERROR
        assert "interrupted" in record.error
        revived.close()

    def test_torn_journal_tail_is_dropped(self, tmp_path):
        queue = JobQueue(tmp_path)
        record, _ = queue.submit(submission())
        queue.close()
        journal = tmp_path / "journal.jsonl"
        with open(journal, "a", encoding="utf-8") as handle:
            handle.write('{"event": "start", "id": "' )  # kill -9 mid-write

        revived = JobQueue(tmp_path)
        assert revived.get(record.id).state == PENDING
        assert revived._dropped_lines == 1
        # The journal stays appendable and consistent after recovery.
        revived.claim(1)
        revived.complete(record.id)
        revived.close()
        assert JobQueue(tmp_path).get(record.id).state == DONE

    def test_journal_is_one_event_per_line(self, tmp_path):
        queue = JobQueue(tmp_path)
        record, _ = queue.submit(submission())
        queue.claim(1)
        queue.complete(record.id)
        queue.close()
        lines = (tmp_path / "journal.jsonl").read_text().splitlines()
        events = [json.loads(line)["event"] for line in lines]
        assert events == ["submit", "start", "done"]

    def test_payload_survives_the_journal(self, tmp_path):
        """The replayed payload still decodes to the same job."""
        queue = JobQueue(tmp_path)
        original = submission(3, options={"max_paths": 50}, label="probe")
        queue.submit(original)
        queue.close()
        revived = JobQueue(tmp_path)
        record = revived.get(original.job_id)
        assert decode_submission(record.payload).job_id == original.job_id
        assert record.label == "probe"
        revived.close()

    def test_max_attempts_must_be_positive(self, tmp_path):
        with pytest.raises(ValueError, match="max_attempts"):
            JobQueue(tmp_path, max_attempts=0)
