"""JobQueue state transitions, journal durability and crash recovery."""

import dataclasses
import json

import pytest

from repro.fuzz.codec import problem_to_json
from repro.fuzz.generators import FuzzSpec, generate
from repro.service.queue import (
    DONE,
    ERROR,
    MAX_JOURNALED_ERROR,
    PENDING,
    RUNNING,
    JobQueue,
    LeaseError,
    QueueError,
)
from repro.service.schema import decode_submission


def submission(seed=0, **extra):
    payload = {"problem": problem_to_json(
        generate(FuzzSpec.make("formula", seed)))}
    payload.update(extra)
    return decode_submission(payload)


class TestTransitions:
    def test_happy_path(self, tmp_path):
        queue = JobQueue(tmp_path)
        record, created = queue.submit(submission())
        assert created and record.state == PENDING
        claimed = queue.claim(10)
        assert [r.id for r in claimed] == [record.id]
        assert record.state == RUNNING and record.attempts == 1
        queue.complete(record.id)
        assert record.state == DONE
        assert queue.counts() == {"pending": 0, "running": 0,
                                  "done": 1, "error": 0}

    def test_submission_is_idempotent(self, tmp_path):
        queue = JobQueue(tmp_path)
        first, created1 = queue.submit(submission())
        second, created2 = queue.submit(submission())
        assert created1 and not created2
        assert first is second
        assert len(queue) == 1

    def test_claim_respects_the_limit(self, tmp_path):
        queue = JobQueue(tmp_path)
        for seed in range(5):
            queue.submit(submission(seed))
        assert len(queue.claim(2)) == 2
        assert len(queue.claim(10)) == 3
        assert queue.claim(10) == []

    def test_retryable_failure_requeues_until_the_cap(self, tmp_path):
        queue = JobQueue(tmp_path, max_attempts=2)
        record, _ = queue.submit(submission())
        queue.claim(1)
        queue.fail(record.id, "stalled", retryable=True)
        assert record.state == PENDING and record.attempts == 1
        queue.claim(1)
        queue.fail(record.id, "stalled again", retryable=True)
        assert record.state == ERROR
        assert "stalled again" in record.error

    def test_non_retryable_failure_parks_immediately(self, tmp_path):
        queue = JobQueue(tmp_path, max_attempts=5)
        record, _ = queue.submit(submission())
        queue.claim(1)
        queue.fail(record.id, "deterministic crash", retryable=False)
        assert record.state == ERROR and record.attempts == 1

    def test_resubmitting_an_errored_job_requeues_it(self, tmp_path):
        queue = JobQueue(tmp_path, max_attempts=1)
        record, _ = queue.submit(submission())
        queue.claim(1)
        queue.fail(record.id, "boom", retryable=True)
        assert record.state == ERROR
        again, created = queue.submit(submission())
        assert again is record and not created
        assert record.state == PENDING and record.attempts == 0

    def test_impossible_transitions_raise(self, tmp_path):
        queue = JobQueue(tmp_path)
        with pytest.raises(QueueError, match="unknown job"):
            queue.complete("nope")
        record, _ = queue.submit(submission())
        with pytest.raises(QueueError, match="pending, expected running"):
            queue.complete(record.id)

    def test_by_fingerprint_indexes_every_job(self, tmp_path):
        queue = JobQueue(tmp_path)
        plain = submission()
        tuned = submission(options={"symmetry": 0})
        queue.submit(plain)
        queue.submit(tuned)
        assert plain.fingerprint == tuned.fingerprint
        assert len(queue.by_fingerprint(plain.fingerprint)) == 2
        assert queue.by_fingerprint("f" * 64) == []


class TestLeases:
    def test_claims_carry_worker_and_deadline(self, tmp_path):
        queue = JobQueue(tmp_path)
        queue.submit(submission(0))
        queue.submit(submission(1))
        (remote,) = queue.claim(1, worker="sat-1", lease_seconds=30.0)
        assert remote.worker == "sat-1"
        assert remote.lease is not None
        assert remote.lease_deadline == pytest.approx(
            remote.started_at + 30.0)
        (local,) = queue.claim(1)
        assert local.worker == "local"
        assert local.lease is not None
        assert local.lease_deadline is None
        assert queue.lease_counts() == {"sat-1": 1, "local": 1}
        queue.close()

    def test_expired_leases_requeue_then_park_at_the_cap(self, tmp_path):
        queue = JobQueue(tmp_path, max_attempts=2)
        record, _ = queue.submit(submission())
        (first,) = queue.claim(1, worker="sat-1", lease_seconds=5.0)
        assert queue.expire_leases(now=first.started_at + 1.0) == []
        (swept,) = queue.expire_leases(now=first.started_at + 6.0)
        assert swept.state == PENDING and swept.attempts == 1
        assert record.worker is None and record.lease is None
        (second,) = queue.claim(1, worker="sat-2", lease_seconds=5.0)
        (swept,) = queue.expire_leases(now=second.started_at + 6.0)
        assert swept.state == ERROR
        assert "expired" in record.error and "sat-2" in record.error
        queue.close()

    def test_local_leases_never_expire(self, tmp_path):
        queue = JobQueue(tmp_path)
        record, _ = queue.submit(submission())
        (claimed,) = queue.claim(1)
        assert queue.expire_leases(now=claimed.started_at + 1e6) == []
        assert record.state == RUNNING
        queue.close()

    def test_heartbeat_extends_the_deadline(self, tmp_path):
        queue = JobQueue(tmp_path)
        queue.submit(submission())
        (claimed,) = queue.claim(1, worker="sat", lease_seconds=1.0)
        before = claimed.lease_deadline
        extended = queue.heartbeat(claimed.lease, 600.0)
        assert extended.lease_deadline > before
        assert queue.expire_leases(now=before + 1.0) == []  # renewed
        with pytest.raises(LeaseError, match="unknown or lapsed"):
            queue.heartbeat("nope")
        queue.close()

    def test_heartbeat_on_a_local_lease_is_a_no_op(self, tmp_path):
        queue = JobQueue(tmp_path)
        queue.submit(submission())
        (claimed,) = queue.claim(1)
        assert queue.heartbeat(claimed.lease).lease_deadline is None
        queue.close()

    def test_a_stale_lease_cannot_complete_or_fail(self, tmp_path):
        queue = JobQueue(tmp_path, max_attempts=5)
        record, _ = queue.submit(submission())
        (claimed,) = queue.claim(1, worker="sat-1", lease_seconds=0.01)
        stale = claimed.lease
        queue.expire_leases(now=claimed.started_at + 1.0)
        (reclaimed,) = queue.claim(1, worker="sat-2", lease_seconds=30.0)
        with pytest.raises(LeaseError, match="no longer holds"):
            queue.complete(record.id, lease=stale)
        with pytest.raises(LeaseError, match="no longer holds"):
            queue.fail(record.id, "late", lease=stale)
        done = queue.complete(record.id, lease=reclaimed.lease)
        assert done.state == DONE and done.worker == "sat-2"
        queue.close()

    def test_expiry_journals_release_then_requeue(self, tmp_path):
        queue = JobQueue(tmp_path)
        queue.submit(submission())
        (claimed,) = queue.claim(1, worker="sat", lease_seconds=0.01)
        queue.expire_leases(now=claimed.started_at + 1.0)
        queue.close()
        events = [json.loads(line)["event"] for line in
                  (tmp_path / "journal.jsonl").read_text().splitlines()]
        assert events == ["submit", "lease", "release", "requeue"]

    def test_error_strings_are_capped_in_memory_and_journal(self, tmp_path):
        queue = JobQueue(tmp_path, max_attempts=2)
        record, _ = queue.submit(submission())
        queue.claim(1)
        queue.fail(record.id, "x" * 2000, retryable=True)  # requeue reason
        queue.claim(1)
        queue.fail(record.id, "y" * 2000, retryable=True)  # cap hit: parks
        assert len(record.error) == MAX_JOURNALED_ERROR
        queue.close()
        for line in (tmp_path / "journal.jsonl").read_text().splitlines():
            event = json.loads(line)
            for key in ("reason", "error"):
                if key in event:
                    assert len(event[key]) <= MAX_JOURNALED_ERROR


class TestSnapshots:
    def test_get_returns_an_independent_copy(self, tmp_path):
        queue = JobQueue(tmp_path)
        record, _ = queue.submit(submission())
        snapshot = queue.get(record.id)
        assert snapshot == record and snapshot is not record
        snapshot.state = DONE  # a reader mangling its copy
        snapshot.attempts = 99
        assert queue.get(record.id).state == PENDING
        assert queue.counts()["pending"] == 1
        queue.close()

    def test_by_fingerprint_returns_copies(self, tmp_path):
        queue = JobQueue(tmp_path)
        record, _ = queue.submit(submission())
        (snapshot,) = queue.by_fingerprint(record.fingerprint)
        assert snapshot is not record
        snapshot.state = ERROR
        assert queue.get(record.id).state == PENDING
        queue.close()


class TestRecovery:
    def test_replay_restores_finished_and_pending_jobs(self, tmp_path):
        queue = JobQueue(tmp_path)
        done, _ = queue.submit(submission(0))
        pending, _ = queue.submit(submission(1))
        queue.claim(1)
        queue.complete(done.id)
        queue.close()

        revived = JobQueue(tmp_path)
        assert revived.get(done.id).state == DONE
        assert revived.get(pending.id).state == PENDING
        assert revived.recovered == 0
        revived.close()

    def test_running_jobs_are_requeued_after_a_crash(self, tmp_path):
        queue = JobQueue(tmp_path)
        record, _ = queue.submit(submission())
        queue.claim(1)
        assert record.state == RUNNING
        queue.close()  # the process dies here; no done/error was journaled

        revived = JobQueue(tmp_path)
        assert revived.get(record.id).state == PENDING
        assert revived.get(record.id).attempts == 1  # the lost attempt
        assert revived.recovered == 1
        revived.close()

    def test_crash_looping_jobs_are_parked_at_the_cap(self, tmp_path):
        for crash in range(2):
            queue = JobQueue(tmp_path, max_attempts=2)
            queue.submit(submission())
            queue.claim(1)
            queue.close()
        revived = JobQueue(tmp_path, max_attempts=2)
        record = next(iter(revived.by_fingerprint(
            submission().fingerprint)))
        assert record.state == ERROR
        assert "interrupted" in record.error
        revived.close()

    def test_torn_journal_tail_is_dropped(self, tmp_path):
        queue = JobQueue(tmp_path)
        record, _ = queue.submit(submission())
        queue.close()
        journal = tmp_path / "journal.jsonl"
        with open(journal, "a", encoding="utf-8") as handle:
            handle.write('{"event": "start", "id": "' )  # kill -9 mid-write

        revived = JobQueue(tmp_path)
        assert revived.get(record.id).state == PENDING
        assert revived._dropped_lines == 1
        # The journal stays appendable and consistent after recovery.
        revived.claim(1)
        revived.complete(record.id)
        revived.close()
        assert JobQueue(tmp_path).get(record.id).state == DONE

    def test_journal_is_one_event_per_line(self, tmp_path):
        queue = JobQueue(tmp_path)
        record, _ = queue.submit(submission())
        queue.claim(1)
        queue.complete(record.id)
        queue.close()
        lines = (tmp_path / "journal.jsonl").read_text().splitlines()
        events = [json.loads(line)["event"] for line in lines]
        assert events == ["submit", "lease", "done"]

    def test_payload_survives_the_journal(self, tmp_path):
        """The replayed payload still decodes to the same job."""
        queue = JobQueue(tmp_path)
        original = submission(3, options={"max_paths": 50}, label="probe")
        queue.submit(original)
        queue.close()
        revived = JobQueue(tmp_path)
        record = revived.get(original.job_id)
        assert decode_submission(record.payload).job_id == original.job_id
        assert record.label == "probe"
        revived.close()

    def test_resubmission_attempt_reset_survives_replay(self, tmp_path):
        """Kill-and-replay regression: resubmitting an errored job resets
        its attempt budget, and the requeue event must journal that reset
        — without it a replayed hub parks the retry attempts early."""
        queue = JobQueue(tmp_path, max_attempts=1)
        record, _ = queue.submit(submission())
        queue.claim(1)
        queue.fail(record.id, "boom", retryable=True)  # cap hit: parked
        assert record.state == ERROR
        queue.submit(submission())  # the client explicitly asks to retry
        live = dataclasses.asdict(queue.get(record.id))
        queue.close()  # kill -9 lands here

        revived = JobQueue(tmp_path, max_attempts=1)
        assert dataclasses.asdict(revived.get(record.id)) == live
        assert revived.get(record.id).attempts == 0
        # The replayed hub grants the same fresh budget the live one did.
        revived.claim(1)
        revived.complete(record.id)
        assert revived.get(record.id).state == DONE
        revived.close()

    def test_max_attempts_must_be_positive(self, tmp_path):
        with pytest.raises(ValueError, match="max_attempts"):
            JobQueue(tmp_path, max_attempts=0)
