"""End-to-end service tests: real server process, real HTTP, kill -9.

The acceptance bar for the service:

* a 50-problem mixed-family batch submitted over HTTP returns verdicts
  identical to in-process ``facade.solve``;
* warm resubmission (a second service instance sharing the cache
  directory) completes entirely from cache — zero new solves, measured
  in ``/v1/metrics``;
* ``kill -9`` mid-batch loses no accepted job: after a restart on the
  same queue directory every submitted job still reaches ``done``;
* a coordinator hub plus two satellite processes solves the same
  50-problem batch verdict-identically, and ``kill -9`` of a satellite
  holding live leases loses no job: the hub's expiry sweep requeues its
  leases and the surviving satellite finishes the batch.
"""

import json
import os
import shutil
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.api import problem_from_spec, solve
from repro.campaign.specs import FAMILIES, ScenarioSpec
from repro.fuzz.codec import problem_to_json
from repro.fuzz.generators import FuzzSpec, generate
from repro.service import ServiceConfig, VerificationService
from repro.service.client import ServiceClient

REPO_ROOT = Path(__file__).resolve().parents[2]


def mixed_batch(count: int):
    """``count`` (problem, submission body) pairs across every family."""
    problems = []
    for index in range(count):
        if index % 5 == 4:
            family = sorted(FAMILIES)[(index // 5) % len(FAMILIES)]
            spec = ScenarioSpec.make(family, index)
            problems.append((problem_from_spec(spec),
                             {"spec": spec.as_dict(), "label": family}))
        else:
            kind = ("formula", "module", "protocol", "formula")[index % 4]
            problem = generate(FuzzSpec.make(kind, index))
            problems.append((problem,
                             {"problem": problem_to_json(problem)}))
    return problems


class TestAcceptanceBatch:
    def test_fifty_problem_batch_matches_inprocess_then_runs_warm(
            self, tmp_path):
        batch = mixed_batch(50)
        cold = VerificationService(ServiceConfig(
            queue_dir=tmp_path / "q-cold", cache_dir=tmp_path / "cache",
            workers=4)).start()
        verdicts = {}
        try:
            client = ServiceClient(cold.url)
            jobs = [client.submit(body)["id"] for _, body in batch]
            assert len(set(jobs)) == 50
            for (problem, _), job_id in zip(batch, jobs):
                final = client.wait(job_id, timeout=300)
                assert final["state"] == "done"
                direct = solve(problem)
                assert final["result"]["verdict"] == direct.verdict.value
                verdicts[job_id] = final["result"]["verdict"]
            metrics = client.metrics()
            assert metrics["jobs"]["done"] == 50
            assert metrics["jobs"]["error"] == 0
        finally:
            cold.stop()

        # A new instance, fresh queue, same cache: everything completes
        # without a single new solve.
        warm = VerificationService(ServiceConfig(
            queue_dir=tmp_path / "q-warm", cache_dir=tmp_path / "cache",
            workers=4)).start()
        try:
            client = ServiceClient(warm.url)
            jobs = [client.submit(body)["id"] for _, body in batch]
            for job_id in jobs:
                final = client.wait(job_id, timeout=60)
                assert final["state"] == "done"
                assert final["result"]["verdict"] == verdicts[job_id]
            metrics = client.metrics()
            assert metrics["solves"] == 0
            assert metrics["cache_hits"] == 50
            assert metrics["cache_hit_rate"] == 1.0
        finally:
            warm.stop()


def start_server(queue_dir, cache_dir, *, workers=2, extra=()):
    """Run ``python -m repro.service`` and parse the bound port."""
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    process = subprocess.Popen(
        [sys.executable, "-m", "repro.service", "--port", "0",
         "--queue-dir", str(queue_dir), "--cache-dir", str(cache_dir),
         "--workers", str(workers), *extra],
        env=env, stdout=subprocess.PIPE, stderr=subprocess.DEVNULL,
        text=True, cwd=str(REPO_ROOT),
    )
    line = process.stdout.readline().strip()
    assert line.startswith("serving on "), f"unexpected banner: {line!r}"
    return process, line.removeprefix("serving on ")


def start_satellite(url, worker_id, *, lease_seconds=2.0, claim_limit=4,
                    poll_interval=0.05):
    """Run ``python -m repro.service --satellite`` against a live hub."""
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    process = subprocess.Popen(
        [sys.executable, "-m", "repro.service", "--satellite", url,
         "--worker-id", worker_id, "--claim-limit", str(claim_limit),
         "--lease-seconds", str(lease_seconds),
         "--poll-interval", str(poll_interval)],
        env=env, stdout=subprocess.PIPE, stderr=subprocess.DEVNULL,
        text=True, cwd=str(REPO_ROOT),
    )
    line = process.stdout.readline().strip()
    assert line.startswith(f"satellite {worker_id} polling"), (
        f"unexpected banner: {line!r}")
    return process


class TestDistributedSatellites:
    def test_fifty_problem_batch_survives_a_mid_lease_kill(self, tmp_path):
        """Hub as pure coordinator, two satellites solving; one satellite
        is SIGKILLed while it holds live leases.  The hub's expiry sweep
        requeues the orphaned leases, the survivor finishes the batch,
        and every verdict matches in-process ``facade.solve`` — zero
        lost, zero duplicated, zero errored jobs."""
        queue_dir = tmp_path / "queue"
        cache_dir = tmp_path / "cache"
        batch = mixed_batch(50)
        hub, url = start_server(queue_dir, cache_dir, workers=1,
                                extra=("--no-local-dispatch",))
        satellites = [start_satellite(url, f"sat-{i}") for i in range(2)]
        try:
            client = ServiceClient(url)
            jobs = [client.submit(body)["id"] for _, body in batch]
            assert len(set(jobs)) == 50
            # Kill -9 the victim the moment it holds >= 2 live leases:
            # it solves sequentially, so at least one lease dies
            # unposted and must be swept back into the queue.
            victim = satellites[0]
            deadline = time.time() + 120
            while True:
                assert time.time() < deadline, \
                    "sat-0 never held two leases at once"
                if client.metrics()["leases"].get("sat-0", 0) >= 2:
                    victim.kill()
                    victim.wait(timeout=30)
                    break
                time.sleep(0.01)
            for (problem, _), job_id in zip(batch, jobs):
                final = client.wait(job_id, timeout=300)
                assert final["state"] == "done", (
                    f"job {job_id} lost to the dead satellite: {final}")
                assert final["result"]["verdict"] == \
                    solve(problem).verdict.value
            metrics = client.metrics()
            assert metrics["jobs"]["done"] == 50
            assert metrics["jobs"]["error"] == 0
            assert metrics["leases_expired"] >= 1
            assert metrics["satellite_results"] >= 50 - \
                metrics["cache_hits"]
            assert metrics["solves"] == 0  # the hub never solved a thing
            artifacts = os.environ.get("REPRO_SERVICE_ARTIFACTS")
            if artifacts:
                dest = Path(artifacts)
                dest.mkdir(parents=True, exist_ok=True)
                shutil.copy(queue_dir / "journal.jsonl",
                            dest / "distributed-journal.jsonl")
                (dest / "distributed-metrics.json").write_text(
                    json.dumps(metrics, indent=2, sort_keys=True))
        finally:
            for satellite in satellites:
                satellite.kill()
                satellite.wait(timeout=30)
            hub.send_signal(signal.SIGTERM)
            try:
                hub.wait(timeout=10)
            except subprocess.TimeoutExpired:
                hub.kill()
                hub.wait(timeout=10)


class TestKillDashNine:
    def test_kill_mid_batch_then_clean_recovery(self, tmp_path):
        queue_dir = tmp_path / "queue"
        cache_dir = tmp_path / "cache"
        batch = mixed_batch(12)

        process, url = start_server(queue_dir, cache_dir)
        try:
            client = ServiceClient(url)
            jobs = [client.submit(body)["id"] for _, body in batch]
            # Let the pool get partway through the batch, then SIGKILL:
            # no flush, no shutdown hook, nothing graceful.
            deadline = time.time() + 60
            while time.time() < deadline:
                if client.metrics()["jobs"]["done"] >= 1:
                    break
                time.sleep(0.02)
        finally:
            process.kill()
            process.wait(timeout=30)

        process, url = start_server(queue_dir, cache_dir)
        try:
            client = ServiceClient(url)
            assert client.healthz()["ok"] is True
            for (problem, _), job_id in zip(batch, jobs):
                final = client.wait(job_id, timeout=300)
                assert final["state"] == "done", (
                    f"job {job_id} lost to the crash: {final}")
                assert final["result"]["verdict"] == \
                    solve(problem).verdict.value
            counts = client.metrics()["jobs"]
            assert counts["done"] == 12 and counts["error"] == 0
        finally:
            process.send_signal(signal.SIGTERM)
            try:
                process.wait(timeout=10)
            except subprocess.TimeoutExpired:
                process.kill()
                process.wait(timeout=10)
