"""Full job lifecycle over HTTP against an in-process service."""

import json
import re
from pathlib import Path

import pytest

from repro.api import solve
from repro.campaign.specs import FAMILIES, ScenarioSpec
from repro.fuzz.codec import problem_to_json
from repro.fuzz.generators import FuzzSpec, generate
from repro.service import ServiceConfig, VerificationService
from repro.service.client import ServiceClient, ServiceError

from tests.api.test_delta import free_problem, rebound


@pytest.fixture
def service(tmp_path):
    instance = VerificationService(ServiceConfig(
        queue_dir=tmp_path / "queue",
        cache_dir=tmp_path / "cache",
        workers=2,
    )).start()
    yield instance
    instance.stop()


@pytest.fixture
def client(service):
    return ServiceClient(service.url)


class TestLifecycle:
    @pytest.mark.parametrize("family", sorted(FAMILIES))
    def test_spec_jobs_match_direct_solve(self, client, family):
        """Submit → poll → result parity with facade.solve, per family."""
        spec = ScenarioSpec.make(family, 0)
        job = client.submit({"spec": spec.as_dict(), "label": family})
        assert job["created"] is True and job["kind"] in (
            "formula", "module", "protocol")
        final = client.wait(job["id"])
        assert final["state"] == "done"
        from repro.api import problem_from_spec

        direct = solve(problem_from_spec(spec))
        assert final["result"]["verdict"] == direct.verdict.value

    @pytest.mark.parametrize("kind", ["formula", "module", "protocol"])
    def test_codec_tree_jobs_match_direct_solve(self, client, kind):
        problem = generate(FuzzSpec.make(kind, 1))
        job = client.submit({"problem": problem_to_json(problem)})
        final = client.wait(job["id"])
        assert final["state"] == "done"
        assert final["result"]["verdict"] == solve(problem).verdict.value

    def test_finished_jobs_resubmit_without_requeueing(self, client):
        body = {"problem": problem_to_json(
            generate(FuzzSpec.make("formula", 2)))}
        first = client.submit(body)
        client.wait(first["id"])
        again = client.submit(body)
        assert again["created"] is False
        assert again["state"] == "done"
        assert again["result"]["verdict"] in ("sat", "unsat")

    def test_results_by_fingerprint(self, client):
        body = {"problem": problem_to_json(
            generate(FuzzSpec.make("formula", 2)))}
        job = client.submit(body)
        final = client.wait(job["id"])
        listing = client.results(final["fingerprint"])
        assert [e["id"] for e in listing["results"]] == [job["id"]]
        assert listing["results"][0]["result"] == final["result"]
        assert client.results("f" * 64)["results"] == []

    def test_unknown_job_is_404(self, client):
        with pytest.raises(ServiceError) as info:
            client.job("nope")
        assert info.value.status == 404

    def test_bad_submission_is_400(self, client):
        with pytest.raises(ServiceError) as info:
            client.submit({"problem": {"kind": "junk"}})
        assert info.value.status == 400

    def test_unknown_endpoint_is_404(self, client):
        with pytest.raises(ServiceError) as info:
            client.request("GET", "/v2/jobs/x")
        assert info.value.status == 404

    def test_metrics_report_the_work(self, client):
        body = {"problem": problem_to_json(
            generate(FuzzSpec.make("formula", 4)))}
        job = client.submit(body)
        client.wait(job["id"])
        metrics = client.metrics()
        assert metrics["jobs"]["done"] == 1
        assert metrics["solves"] == 1
        assert metrics["queue_depth"] == 0
        assert sum(metrics["latency_histogram"].values()) == 1
        assert 0.0 <= metrics["worker_utilization"] <= 1.0


class TestWarmCache:
    def test_fresh_service_completes_from_the_shared_cache(self, tmp_path):
        """A new service instance over the same cache dir never solves a
        problem the previous instance already solved (zero new solves,
        visible in /v1/metrics)."""
        bodies = [
            {"problem": problem_to_json(generate(FuzzSpec.make(kind, seed)))}
            for kind in ("formula", "module") for seed in (0, 1)
        ]
        cold = VerificationService(ServiceConfig(
            queue_dir=tmp_path / "q1", cache_dir=tmp_path / "cache",
            workers=2)).start()
        try:
            cold_client = ServiceClient(cold.url)
            verdicts = {}
            for body in bodies:
                job = cold_client.submit(body)
                verdicts[job["id"]] = cold_client.wait(
                    job["id"])["result"]["verdict"]
            assert cold_client.metrics()["solves"] == len(bodies)
        finally:
            cold.stop()

        warm = VerificationService(ServiceConfig(
            queue_dir=tmp_path / "q2", cache_dir=tmp_path / "cache",
            workers=2)).start()
        try:
            warm_client = ServiceClient(warm.url)
            for body in bodies:
                job = warm_client.submit(body)
                final = warm_client.wait(job["id"])
                assert final["result"]["verdict"] == verdicts[job["id"]]
                assert final["result"]["detail"] is not None
            metrics = warm_client.metrics()
            assert metrics["solves"] == 0
            assert metrics["cache_hits"] == len(bodies)
            assert metrics["cache_hit_rate"] == 1.0
        finally:
            warm.stop()


class TestDeltaJobs:
    def test_narrowed_bounds_reuse_a_live_solver_over_the_wire(self, client):
        """delta_of provenance (detail["delta"]) survives the wire: a
        bounds-narrowed variant is answered on the anchor's solver."""
        problem, r = free_problem()
        narrowed = rebound(problem, r, drop=[("c",)])
        anchor = client.submit({"problem": problem_to_json(problem)})
        client.wait(anchor["id"])
        job = client.submit({"problem": problem_to_json(narrowed),
                             "delta_of": anchor["id"]})
        final = client.wait(job["id"])
        assert final["state"] == "done"
        provenance = final["result"]["detail"]["delta"]
        assert provenance["path"] == "reused"
        assert provenance["reason"] == "bounds_narrowed"
        assert final["result"]["verdict"] == solve(narrowed).verdict.value
        assert client.metrics()["delta_reused"] == 1

    def test_formula_edit_falls_back_with_provenance(self, client):
        problem, r = free_problem()
        changed, _ = free_problem(lambda rel: rel.no())
        anchor = client.submit({"problem": problem_to_json(problem)})
        client.wait(anchor["id"])
        job = client.submit({"problem": problem_to_json(changed),
                             "delta_of": anchor["id"]})
        final = client.wait(job["id"])
        provenance = final["result"]["detail"]["delta"]
        assert provenance["path"] == "fallback"
        assert provenance["reason"] == "formula_changed"
        assert final["result"]["verdict"] == solve(changed).verdict.value
        assert client.metrics()["delta_fallback"] == 1

    def test_unknown_anchor_is_rejected_at_submission(self, client):
        problem, _ = free_problem()
        with pytest.raises(ServiceError) as info:
            client.submit({"problem": problem_to_json(problem),
                           "delta_of": "f" * 64})
        assert info.value.status == 400
        assert "unknown job" in str(info.value)


class TestEdgePolicies:
    def test_auth_gates_every_endpoint_but_healthz(self, tmp_path):
        service = VerificationService(ServiceConfig(
            queue_dir=tmp_path / "q", cache_dir=tmp_path / "c",
            workers=1, token="sekrit")).start()
        try:
            anonymous = ServiceClient(service.url)
            assert anonymous.healthz()["ok"] is True
            for call in (anonymous.metrics,
                         lambda: anonymous.job("x"),
                         lambda: anonymous.submit({"problem": {}})):
                with pytest.raises(ServiceError) as info:
                    call()
                assert info.value.status == 401
            wrong = ServiceClient(service.url, token="wrong")
            with pytest.raises(ServiceError) as info:
                wrong.metrics()
            assert info.value.status == 401
            authed = ServiceClient(service.url, token="sekrit")
            assert authed.metrics()["jobs"]["pending"] == 0
        finally:
            service.stop()

    def test_rate_limit_answers_429_with_retry_after(self, tmp_path):
        service = VerificationService(ServiceConfig(
            queue_dir=tmp_path / "q", cache_dir=tmp_path / "c",
            workers=1, rate_limit=0.5, burst=3)).start()
        try:
            client = ServiceClient(service.url)
            for _ in range(3):
                client.healthz()
            with pytest.raises(ServiceError) as info:
                client.healthz()
            assert info.value.status == 429
            assert "rate limit" in str(info.value)
        finally:
            service.stop()

    def test_rate_limiting_is_off_by_default(self, client):
        for _ in range(30):
            client.healthz()


class TestReadmeExample:
    def test_the_readme_job_example_runs_verbatim(self, client):
        """The JSON submission shown in README.md § Running the service
        is executed as-is against a live server."""
        readme = Path(__file__).resolve().parents[2] / "README.md"
        section = readme.read_text().split("## Running the service", 1)[1]
        match = re.search(r"```json\n(.*?)```", section, re.DOTALL)
        assert match, "README must show a JSON job example"
        submission = json.loads(match.group(1))
        job = client.submit(submission)
        final = client.wait(job["id"])
        assert final["state"] == "done"
        assert final["result"]["verdict"] in (
            "sat", "unsat", "holds", "counterexample")
