"""Wire-schema validation and content addressing."""

import pytest

from repro.api import (
    Options,
    problem_fingerprint,
    problem_from_spec,
    problem_kind,
)
from repro.campaign.specs import FAMILIES, ScenarioSpec
from repro.fuzz.codec import problem_to_json
from repro.fuzz.generators import FuzzSpec, generate
from repro.service.schema import (
    SERVICE_SCHEMA,
    SchemaError,
    decode_submission,
    job_id_for,
)


def tree(kind="formula", seed=0):
    return problem_to_json(generate(FuzzSpec.make(kind, seed)))


class TestValidation:
    def test_non_dict_is_rejected(self):
        with pytest.raises(SchemaError, match="JSON object"):
            decode_submission([1, 2])

    def test_unknown_keys_are_rejected(self):
        with pytest.raises(SchemaError, match="probem"):
            decode_submission({"probem": tree()})

    def test_foreign_schema_version_is_rejected(self):
        with pytest.raises(SchemaError, match="schema version 99"):
            decode_submission({"schema": 99, "problem": tree()})

    def test_exactly_one_problem_source(self):
        with pytest.raises(SchemaError, match="exactly one"):
            decode_submission({})
        with pytest.raises(SchemaError, match="exactly one"):
            decode_submission({
                "problem": tree(),
                "spec": {"family": "mca", "seed": 0, "params": {}},
            })

    def test_option_typos_are_caught_at_the_edge(self):
        with pytest.raises(SchemaError, match="sovler"):
            decode_submission({"problem": tree(),
                               "options": {"sovler": "kodkod"}})

    def test_malformed_problem_tree_is_rejected(self):
        with pytest.raises(SchemaError, match="invalid problem payload"):
            decode_submission({"problem": {"kind": "formula"}})

    def test_malformed_spec_is_rejected(self):
        with pytest.raises(SchemaError, match="invalid spec"):
            decode_submission({"spec": {"family": "no-such-family",
                                        "seed": 0, "params": {}}})

    def test_delta_of_must_be_a_job_id_string(self):
        for bad in ("", 7, ["id"]):
            with pytest.raises(SchemaError, match="delta_of"):
                decode_submission({"problem": tree(), "delta_of": bad})

    def test_label_must_be_a_string(self):
        with pytest.raises(SchemaError, match="label"):
            decode_submission({"problem": tree(), "label": 3})


class TestContentAddressing:
    def test_execution_knobs_do_not_change_the_job_id(self):
        """workers/timeout/cache_dir change how, not what — same job."""
        base = decode_submission({"problem": tree()})
        tuned = decode_submission({
            "problem": tree(),
            "options": {"workers": 4, "timeout": 30.0, "cache_dir": "/x"},
        })
        assert tuned.job_id == base.job_id
        assert tuned.cache_key == base.cache_key

    def test_result_affecting_options_change_the_job_id(self):
        base = decode_submission({"problem": tree()})
        other = decode_submission({"problem": tree(),
                                   "options": {"symmetry": 0}})
        assert other.job_id != base.job_id

    def test_delta_of_changes_the_job_id(self):
        base = decode_submission({"problem": tree()})
        delta = decode_submission({"problem": tree(),
                                   "delta_of": "a" * 64})
        assert delta.job_id != base.job_id
        assert delta.cache_key == base.cache_key

    def test_journal_payload_round_trips_to_the_same_job(self):
        """decode(submission.payload()) is a fixpoint: canonical form."""
        first = decode_submission({"problem": tree("module", 2),
                                   "options": {"max_rounds": 9},
                                   "label": "x"})
        second = decode_submission(first.payload())
        assert second.job_id == first.job_id
        assert second.problem_payload == first.problem_payload
        assert second.options == first.options

    def test_job_id_is_deterministic(self):
        opts = Options(symmetry=0)
        assert job_id_for("f" * 64, opts) == job_id_for("f" * 64, opts)
        assert job_id_for("f" * 64, opts) != job_id_for("e" * 64, opts)


class TestSpecLifting:
    @pytest.mark.parametrize("family", sorted(FAMILIES))
    def test_every_family_lifts_to_the_same_problem(self, family):
        spec = ScenarioSpec.make(family, 0)
        submission = decode_submission({"spec": spec.as_dict()})
        direct = problem_from_spec(spec)
        assert submission.kind == problem_kind(direct)
        assert submission.fingerprint == problem_fingerprint(direct)

    def test_spec_and_tree_spellings_address_the_same_job(self):
        spec = ScenarioSpec.make("relational", 0)
        via_spec = decode_submission({"spec": spec.as_dict()})
        via_tree = decode_submission(
            {"problem": problem_to_json(problem_from_spec(spec))})
        assert via_spec.job_id == via_tree.job_id


class TestOptionsWire:
    def test_to_json_round_trips_every_field(self):
        opts = Options(solver="kodkod", symmetry=3, max_instances=7,
                       max_rounds=5, max_paths=99, memoize=False,
                       timeout=2.5, workers=3, cache_dir="/tmp/c")
        assert Options.from_json(opts.to_json()) == opts

    def test_from_json_defaults_missing_fields(self):
        assert Options.from_json({}) == Options()
        assert Options.from_json({"workers": 2}) == Options(workers=2)

    def test_from_json_rejects_non_dicts(self):
        with pytest.raises(ValueError, match="JSON object"):
            Options.from_json("solver=kodkod")

    def test_submission_schema_constant_is_versioned(self):
        assert SERVICE_SCHEMA == 1
