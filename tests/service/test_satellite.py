"""The satellite half of the execution fabric, against in-process hubs.

These tests run the hub as a pure coordinator (``local_dispatch=False``)
so every solve observed is attributable to the satellite under test:
claim batching, lease bookkeeping, result posting, heartbeat keep-alive,
and the hub-side policies (delta jobs stay local, cache hits are
answered inline, stale posts bounce with 409).  The DeltaSession
lifecycle regression rides along because the worker pool is the host
that must not leak evicted sessions.
"""

import dataclasses
import time

import pytest

from repro.api import solve
from repro.api.delta import open_session_count
from repro.fuzz.codec import problem_to_json
from repro.fuzz.generators import FuzzSpec, generate
from repro.service import ServiceConfig, VerificationService
from repro.service.client import ServiceClient, ServiceError
from repro.service.satellite import SatelliteWorker

from tests.api.test_delta import free_problem, rebound


def formula_body(seed):
    return {"problem": problem_to_json(
        generate(FuzzSpec.make("formula", seed)))}


@pytest.fixture
def hub(tmp_path):
    instance = VerificationService(ServiceConfig(
        queue_dir=tmp_path / "queue", cache_dir=tmp_path / "cache",
        workers=1, local_dispatch=False)).start()
    yield instance
    instance.stop()


@pytest.fixture
def client(hub):
    return ServiceClient(hub.url)


class TestSatelliteFabric:
    def test_claim_solve_post_matches_direct_solve(self, hub, client):
        problems = [generate(FuzzSpec.make("formula", seed))
                    for seed in range(3)]
        jobs = [client.submit({"problem": problem_to_json(p)})["id"]
                for p in problems]
        worker = SatelliteWorker(hub.url, worker_id="sat-test",
                                 claim_limit=2)
        for _ in range(6):
            if worker.run_once() == 0:
                break
        for problem, job_id in zip(problems, jobs):
            final = client.wait(job_id, timeout=120)
            assert final["state"] == "done"
            assert final["result"]["verdict"] == solve(problem).verdict.value
            assert final["worker"] == "sat-test"
        metrics = client.metrics()
        assert metrics["satellite_claims"] == 3
        assert metrics["satellite_results"] == 3
        assert metrics["leases_expired"] == 0
        assert metrics["jobs"] == {"pending": 0, "running": 0,
                                   "done": 3, "error": 0}
        assert worker.stats.snapshot()["solved"] == 3

    def test_delta_jobs_stay_local(self, hub, client):
        """A satellite cold-solve would lose the warm-session provenance
        delta jobs exist for, so claims never ship them."""
        problem, r = free_problem()
        narrowed = rebound(problem, r, drop=[("c",)])
        anchor = client.submit({"problem": problem_to_json(problem)})
        delta = client.submit({"problem": problem_to_json(narrowed),
                               "delta_of": anchor["id"]})
        body = client.claim("sat-x", limit=10)
        assert [c["id"] for c in body["claims"]] == [anchor["id"]]
        assert client.job(delta["id"])["state"] == "pending"

    def test_a_stale_post_bounces_with_409(self, hub, client):
        job_id = client.submit(formula_body(11))["id"]
        (claim,) = client.claim("sat-slow", limit=1,
                                lease_seconds=0.05)["claims"]
        deadline = time.time() + 30
        while client.metrics()["leases_expired"] < 1:
            assert time.time() < deadline, "sweep never expired the lease"
            time.sleep(0.02)
        worker = SatelliteWorker(hub.url, worker_id="sat-slow")
        result = worker._solve_claim(claim)
        worker._post(claim, result)  # swallows the 409 and counts it
        assert worker.stats.snapshot()["lost_leases"] == 1
        with pytest.raises(ServiceError) as info:
            client.post_result(job_id, lease=claim["lease"],
                               worker="sat-slow", result=result)
        assert info.value.status == 409
        # The job is back in the queue awaiting a fresh claim, unharmed.
        assert client.job(job_id)["state"] == "pending"
        assert client.metrics()["jobs"]["error"] == 0

    def test_heartbeats_keep_a_short_lease_alive(self, hub, client):
        job_id = client.submit(formula_body(12))["id"]
        (claim,) = client.claim("sat-beat", limit=1,
                                lease_seconds=0.3)["claims"]
        # Outlive the original deadline several times over on heartbeats.
        end = time.time() + 1.2
        while time.time() < end:
            client.heartbeat(claim["lease"], 0.5)
            time.sleep(0.05)
        assert time.time() > claim["deadline"]
        assert client.metrics()["leases_expired"] == 0
        client.heartbeat(claim["lease"], 60.0)  # room to solve and post
        worker = SatelliteWorker(hub.url, worker_id="sat-beat")
        body = client.post_result(job_id, lease=claim["lease"],
                                  worker="sat-beat",
                                  result=worker._solve_claim(claim))
        assert body["state"] == "done"

    def test_heartbeat_on_an_unknown_lease_is_409(self, client):
        with pytest.raises(ServiceError) as info:
            client.heartbeat("bogus")
        assert info.value.status == 409

    def test_an_undecodable_claim_payload_parks_the_job(self, hub, client):
        """A satellite that cannot decode a payload posts a deterministic
        error instead of crashing its loop; the hub parks the job."""
        job_id = client.submit(formula_body(15))["id"]
        (claim,) = client.claim("sat-bad", limit=1)["claims"]
        worker = SatelliteWorker(hub.url, worker_id="sat-bad")
        mangled = {**claim, "payload": {"problem": {"kind": "junk"}}}
        result = worker._solve_claim(mangled)
        assert "could not decode" in result["error"]
        worker._post(claim, result)
        assert worker.stats.snapshot()["errors"] == 1
        final = client.job(job_id)
        assert final["state"] == "error"
        assert "could not decode" in final["error"]


class TestHubPolicies:
    def test_cached_work_is_answered_inline_not_shipped(self, tmp_path):
        body = formula_body(13)
        solver_hub = VerificationService(ServiceConfig(
            queue_dir=tmp_path / "q1", cache_dir=tmp_path / "cache",
            workers=1)).start()
        try:
            first = ServiceClient(solver_hub.url)
            first.wait(first.submit(body)["id"], timeout=120)
        finally:
            solver_hub.stop()

        coordinator = VerificationService(ServiceConfig(
            queue_dir=tmp_path / "q2", cache_dir=tmp_path / "cache",
            workers=1, local_dispatch=False)).start()
        try:
            client = ServiceClient(coordinator.url)
            job_id = client.submit(body)["id"]
            assert client.claim("sat-x", limit=5)["claims"] == []
            assert client.job(job_id)["state"] == "done"
            metrics = client.metrics()
            assert metrics["cache_hits"] == 1
            assert metrics["satellite_claims"] == 0
        finally:
            coordinator.stop()

    @pytest.mark.parametrize("body", [
        None,
        {},
        {"worker": ""},
        {"worker": 7},
        {"worker": "local"},
        {"worker": "sat", "limit": 0},
        {"worker": "sat", "limit": 999},
        {"worker": "sat", "limit": "two"},
        {"worker": "sat", "lease_seconds": 0},
        {"worker": "sat", "lease_seconds": 1e9},
    ])
    def test_malformed_claims_are_400(self, client, body):
        with pytest.raises(ServiceError) as info:
            client.request("POST", "/v1/claims", body)
        assert info.value.status == 400

    def test_malformed_results_are_rejected(self, hub, client):
        job_id = client.submit(formula_body(14))["id"]
        (claim,) = client.claim("sat-v", limit=1)["claims"]
        for body in ({"result": {"verdict": "sat"}},            # no lease
                     {"lease": claim["lease"]},                 # no result
                     {"lease": claim["lease"], "result": {}}):  # no verdict
            with pytest.raises(ServiceError) as info:
                client.request("POST", f"/v1/jobs/{job_id}/result", body)
            assert info.value.status == 400
        with pytest.raises(ServiceError) as info:
            client.post_result("nope", lease="x", worker="sat-v",
                               result={"verdict": "sat"})
        assert info.value.status == 404


class TestSessionLifecycle:
    def test_evicted_and_stopped_sessions_are_closed(self, tmp_path):
        """Churning the delta-session LRU past its cap must close what it
        evicts — the regression was sessions leaking live solvers."""
        from repro.api.options import Options
        from repro.campaign.runner import ResultCache
        from repro.service.queue import JobQueue
        from repro.service.schema import decode_submission
        from repro.service.workers import _SESSION_CAP, WorkerPool

        queue = JobQueue(tmp_path / "q")
        pool = WorkerPool(queue, ResultCache(tmp_path / "c"), workers=1)
        baseline = open_session_count()
        options = Options.from_json({})
        for seed in range(_SESSION_CAP + 4):
            anchor, _ = queue.submit(
                decode_submission(formula_body(seed)))
            probe = dataclasses.replace(anchor, delta_of=anchor.id)
            pool._session_for(probe, options)
            assert open_session_count() - baseline <= _SESSION_CAP, (
                "evicted sessions must be closed, not leaked")
        assert open_session_count() - baseline == _SESSION_CAP
        pool.stop()
        queue.close()
        assert open_session_count() == baseline

    def test_a_closed_session_refuses_to_solve(self):
        problem, _ = free_problem()
        from repro.api.delta import DeltaSession

        with DeltaSession(problem, solve_anchor=False) as session:
            assert not session.closed
        assert session.closed
        session.close()  # idempotent
        with pytest.raises(RuntimeError, match="closed"):
            session.solve(problem)
