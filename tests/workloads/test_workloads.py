"""Tests for the application-domain workload generators."""

from repro.mca import SynchronousEngine, consensus_report
from repro.vnm import embed
from repro.workloads import (
    economic_dispatch,
    uav_task_allocation,
    vn_embedding_workload,
)


class TestUavWorkload:
    def test_generation_deterministic(self):
        a = uav_task_allocation(seed=5)
        b = uav_task_allocation(seed=5)
        assert a.positions == b.positions
        assert a.task_locations == b.task_locations

    def test_network_connected(self):
        wl = uav_task_allocation(num_uavs=6, num_tasks=4, seed=1)
        assert wl.network.diameter() >= 1

    def test_utilities_submodular(self):
        wl = uav_task_allocation(seed=2)
        for policy in wl.policies.values():
            assert policy.utility.is_submodular_on(wl.items[:3], 2)

    def test_auction_converges(self):
        wl = uav_task_allocation(num_uavs=3, num_tasks=4, seed=3)
        engine = SynchronousEngine(wl.network, wl.items, wl.policies)
        result = engine.run()
        assert result.converged
        assert consensus_report(engine.agents).consensus

    def test_allocation_conflict_free(self):
        wl = uav_task_allocation(num_uavs=4, num_tasks=5, seed=4)
        engine = SynchronousEngine(wl.network, wl.items, wl.policies)
        result = engine.run()
        winners = [w for w in result.allocation.values() if w is not None]
        report = consensus_report(engine.agents)
        assert report.conflict_free


class TestVnWorkload:
    def test_generation(self):
        wl = vn_embedding_workload(num_requests=2, seed=7)
        assert len(wl.requests) == 2
        assert wl.physical.is_connected()

    def test_requests_embeddable(self):
        wl = vn_embedding_workload(grid_width=3, grid_height=3,
                                   num_requests=1, request_size=3, seed=0)
        result = embed(wl.requests[0], wl.physical)
        assert result.success, result.reason


class TestDispatchWorkload:
    def test_generation_deterministic(self):
        a = economic_dispatch(seed=9)
        b = economic_dispatch(seed=9)
        assert a.unit_efficiency == b.unit_efficiency

    def test_auction_converges(self):
        wl = economic_dispatch(num_units=4, num_blocks=5, seed=2)
        engine = SynchronousEngine(wl.network, wl.items, wl.policies)
        result = engine.run()
        assert result.converged

    def test_capacity_respected(self):
        wl = economic_dispatch(num_units=3, num_blocks=9,
                               capacity_blocks=2, seed=5)
        engine = SynchronousEngine(wl.network, wl.items, wl.policies)
        engine.run()
        for agent in engine.agents.values():
            assert len(agent.bundle) <= 2
