"""Property tests: algebraic laws of relational logic survive translation.

Each law is checked semantically: the equivalence formula must be VALID
within bounds (its negation UNSAT).  This catches translation bugs that
pointwise unit tests miss (e.g. wrong column order in joins).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kodkod import Bounds, Universe, ast, solve

ATOMS = ["a", "b", "c"]


def _bounds():
    u = Universe(ATOMS)
    r = ast.Relation("r", 2)
    s = ast.Relation("s", 2)
    t = ast.Relation("t", 1)
    b = Bounds(u)
    b.bound(r, u.empty(2), u.all_tuples(2))
    b.bound(s, u.empty(2), u.all_tuples(2))
    b.bound(t, u.empty(1), u.all_tuples(1))
    return u, b, r, s, t


def assert_valid(formula, bounds):
    assert not solve(ast.Not(formula), bounds).satisfiable


class TestBooleanLaws:
    def test_de_morgan_over_subsets(self):
        u, b, r, s, t = _bounds()
        f1 = ast.Not(ast.And([r.some(), s.some()]))
        f2 = ast.Or([ast.Not(r.some()), ast.Not(s.some())])
        assert_valid(f1.iff(f2), b)

    def test_double_negation(self):
        u, b, r, s, t = _bounds()
        assert_valid(ast.Not(ast.Not(r.some())).iff(r.some()), b)

    def test_implication_as_disjunction(self):
        u, b, r, s, t = _bounds()
        f1 = r.some().implies(s.some())
        f2 = ast.Or([ast.Not(r.some()), s.some()])
        assert_valid(f1.iff(f2), b)


class TestRelationalLaws:
    def test_union_commutative(self):
        u, b, r, s, t = _bounds()
        assert_valid(ast.Equal(ast.Union(r, s), ast.Union(s, r)), b)

    def test_intersection_idempotent(self):
        u, b, r, s, t = _bounds()
        assert_valid(ast.Equal(ast.Intersection(r, r), r), b)

    def test_difference_of_self_empty(self):
        u, b, r, s, t = _bounds()
        assert_valid(ast.No(ast.Difference(r, r)), b)

    def test_transpose_involution(self):
        u, b, r, s, t = _bounds()
        assert_valid(ast.Equal(ast.Transpose(ast.Transpose(r)), r), b)

    def test_transpose_distributes_over_union(self):
        u, b, r, s, t = _bounds()
        assert_valid(
            ast.Equal(ast.Transpose(ast.Union(r, s)),
                      ast.Union(ast.Transpose(r), ast.Transpose(s))),
            b,
        )

    def test_closure_idempotent(self):
        u, b, r, s, t = _bounds()
        assert_valid(
            ast.Equal(ast.Closure(ast.Closure(r)), ast.Closure(r)), b
        )

    def test_closure_contains_relation(self):
        u, b, r, s, t = _bounds()
        assert_valid(ast.Subset(r, ast.Closure(r)), b)

    def test_join_associates_with_composition(self):
        u, b, r, s, t = _bounds()
        lhs = ast.Join(ast.Join(t, r), s)
        rhs = ast.Join(t, ast.Join(r, s))
        assert_valid(ast.Equal(lhs, rhs), b)

    def test_join_distributes_over_union(self):
        u, b, r, s, t = _bounds()
        lhs = ast.Join(t, ast.Union(r, s))
        rhs = ast.Union(ast.Join(t, r), ast.Join(t, s))
        assert_valid(ast.Equal(lhs, rhs), b)

    def test_iden_is_join_identity(self):
        u, b, r, s, t = _bounds()
        assert_valid(ast.Equal(ast.Join(r, ast.Iden()), r), b)
        assert_valid(ast.Equal(ast.Join(ast.Iden(), r), r), b)

    def test_subset_antisymmetry(self):
        u, b, r, s, t = _bounds()
        both = ast.And([ast.Subset(r, s), ast.Subset(s, r)])
        assert_valid(both.implies(ast.Equal(r, s)), b)


class TestMultiplicityLaws:
    def test_one_implies_some_and_lone(self):
        u, b, r, s, t = _bounds()
        assert_valid(t.one().implies(ast.And([t.some(), t.lone()])), b)

    def test_no_iff_not_some(self):
        u, b, r, s, t = _bounds()
        assert_valid(t.no().iff(ast.Not(t.some())), b)

    def test_cardinality_consistency(self):
        u, b, r, s, t = _bounds()
        assert_valid(t.count_eq(1).iff(t.one()), b)
        assert_valid(t.count_ge(1).iff(t.some()), b)

    @given(st.integers(min_value=0, max_value=3))
    @settings(max_examples=8, deadline=None)
    def test_cardinality_eq_implies_ge(self, n):
        u, b, r, s, t = _bounds()
        assert_valid(t.count_eq(n).implies(t.count_ge(n)), b)
