"""Tests for symmetry detection and lex-leader symmetry breaking."""

import itertools

import pytest

from repro.kodkod import (
    Bounds,
    Universe,
    atom_partition,
    count_solutions,
    iter_solutions,
    relation,
    solve,
)
from repro.kodkod import ast


@pytest.fixture
def four_atoms():
    return Universe(["a", "b", "c", "d"])


class TestAtomPartition:
    def test_fully_free_relation_makes_one_class(self, four_atoms):
        r = relation("r", 1)
        b = Bounds(four_atoms)
        b.bound(r, four_atoms.empty(1), four_atoms.all_tuples(1))
        assert atom_partition(b) == [[0, 1, 2, 3]]

    def test_lower_bound_pins_an_atom(self, four_atoms):
        r = relation("r", 1)
        b = Bounds(four_atoms)
        b.bound(r, four_atoms.tuple_set(1, [("a",)]), four_atoms.all_tuples(1))
        assert atom_partition(b) == [[0], [1, 2, 3]]

    def test_partial_upper_bound_splits_classes(self, four_atoms):
        r = relation("r", 1)
        b = Bounds(four_atoms)
        b.bound(r, four_atoms.empty(1),
                four_atoms.tuple_set(1, [("a",), ("b",)]))
        assert atom_partition(b) == [[0, 1], [2, 3]]

    def test_binary_relation_keeps_symmetric_atoms_together(self, four_atoms):
        edge = relation("edge", 2)
        b = Bounds(four_atoms)
        b.bound(edge, four_atoms.empty(2), four_atoms.all_tuples(2))
        assert atom_partition(b) == [[0, 1, 2, 3]]

    def test_asymmetric_constant_breaks_everything(self, four_atoms):
        edge = relation("edge", 2)
        b = Bounds(four_atoms)
        b.bound_exactly(edge, four_atoms.tuple_set(2, [("a", "b"), ("b", "c")]))
        assert atom_partition(b) == [[0], [1], [2], [3]]

    def test_multiple_relations_intersect_their_symmetries(self, four_atoms):
        r = relation("r", 1)
        s = relation("s", 1)
        b = Bounds(four_atoms)
        b.bound(r, four_atoms.empty(1),
                four_atoms.tuple_set(1, [("a",), ("b",), ("c",)]))
        b.bound(s, four_atoms.empty(1),
                four_atoms.tuple_set(1, [("c",), ("d",)]))
        # c is in both uppers; a, b only in r's; d only in s's.
        assert atom_partition(b) == [[0, 1], [2], [3]]


def _orbit_key(instance, bounds, classes):
    """Canonical form of an instance under permutations within classes."""
    universe = bounds.universe
    relations = sorted(bounds.relations(), key=lambda r: r.name)

    def rendered(mapping):
        out = []
        for rel in relations:
            tuples = frozenset(
                tuple(mapping[universe.index(a)] for a in t)
                for t in instance.value_of(rel)
            )
            out.append((rel.name, tuple(sorted(tuples))))
        return tuple(out)

    best = None
    multi = [cls for cls in classes if len(cls) > 1]
    per_class = [list(itertools.permutations(cls)) for cls in multi]
    for combo in itertools.product(*per_class) if per_class else [()]:
        mapping = {i: i for i in range(len(universe))}
        for cls, perm in zip(multi, combo):
            for src, dst in zip(cls, perm):
                mapping[src] = dst
        key = rendered(mapping)
        if best is None or key < best:
            best = key
    return best


class TestSymmetryBreaking:
    def _subset_problem(self):
        universe = Universe(["a", "b", "c"])
        r = relation("r", 1)
        bounds = Bounds(universe)
        bounds.bound(r, universe.empty(1), universe.all_tuples(1))
        return r, bounds

    def test_enumeration_counts_isomorphism_classes(self):
        _, bounds = self._subset_problem()
        # Subsets of 3 interchangeable atoms: 8 models, 4 sizes (classes).
        assert count_solutions(ast.TrueF(), bounds) == 8
        assert count_solutions(ast.TrueF(), bounds, symmetry=20) == 4

    def test_canonical_instances_cover_every_orbit(self):
        _, bounds = self._subset_problem()
        classes = atom_partition(bounds)
        full = {
            _orbit_key(i, bounds, classes)
            for i in iter_solutions(ast.TrueF(), bounds)
        }
        broken = {
            _orbit_key(i, bounds, classes)
            for i in iter_solutions(ast.TrueF(), bounds, symmetry=20)
        }
        assert broken == full  # every isomorphism class keeps a witness

    def test_canonical_instances_are_a_subset_of_all(self):
        r, bounds = self._subset_problem()
        all_values = {
            frozenset(i.value_of(r)) for i in iter_solutions(ast.TrueF(), bounds)
        }
        broken_values = {
            frozenset(i.value_of(r))
            for i in iter_solutions(ast.TrueF(), bounds, symmetry=20)
        }
        assert broken_values <= all_values
        assert len(broken_values) < len(all_values)

    def test_sat_verdict_preserved(self):
        r, bounds = self._subset_problem()
        assert solve(r.count_eq(2), bounds, symmetry=20).satisfiable
        assert solve(r.count_eq(2), bounds, symmetry=0).satisfiable

    def test_unsat_verdict_preserved(self):
        r, bounds = self._subset_problem()
        formula = ast.And([r.some(), r.no()])
        assert not solve(formula, bounds, symmetry=20).satisfiable
        assert not solve(formula, bounds, symmetry=0).satisfiable

    def test_verdicts_agree_on_assorted_formulas(self):
        r, bounds = self._subset_problem()
        formulas = [
            r.one(),
            r.lone(),
            r.count_eq(3),
            r.count_eq(4),
            ast.Not(r.some()),
            ast.And([r.count_ge(2), r.lone()]),
        ]
        for formula in formulas:
            with_sbp = solve(formula, bounds, symmetry=20).satisfiable
            without = solve(formula, bounds, symmetry=0).satisfiable
            assert with_sbp == without, formula

    def test_interchangeable_agents_allocation_scenario(self):
        """The acceptance scenario: items allocated to interchangeable
        agents enumerate far fewer canonical instances."""
        agents = ["p0", "p1", "p2"]
        items = ["v0", "v1"]
        universe = Universe(agents + items)
        item_sig = relation("item", 1)
        alloc = relation("alloc", 2)
        bounds = Bounds(universe)
        bounds.bound_exactly(
            item_sig, universe.tuple_set(1, [(v,) for v in items])
        )
        bounds.bound(
            alloc,
            universe.empty(2),
            universe.tuple_set(2, [(v, p) for v in items for p in agents]),
        )
        from repro.kodkod import forall, variable

        x = variable("x")
        f = forall(x, item_sig, x.join(alloc).one())
        plain = count_solutions(f, bounds)
        broken = count_solutions(f, bounds, symmetry=20)
        assert plain == 9  # 3 agents per item, 2 items
        assert 0 < broken < plain
        classes = atom_partition(bounds)
        full_orbits = {
            _orbit_key(i, bounds, classes) for i in iter_solutions(f, bounds)
        }
        broken_orbits = {
            _orbit_key(i, bounds, classes)
            for i in iter_solutions(f, bounds, symmetry=20)
        }
        assert broken_orbits == full_orbits

    def test_symmetry_stats_populated(self):
        from repro.kodkod.engine import translate

        _, bounds = self._subset_problem()
        translation = translate(ast.TrueF(), bounds, symmetry=20)
        assert translation.symmetry is not None
        assert translation.symmetry.largest_class == 3
        assert translation.stats.num_sbp_predicates == 2
        plain = translate(ast.TrueF(), bounds)
        assert plain.symmetry is None
        assert plain.stats.num_sbp_predicates == 0
