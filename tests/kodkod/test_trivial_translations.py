"""Trivially-true/false translations: the constant-root CNF edges.

Construction-time simplification can collapse a whole formula to the
``TRUE``/``FALSE`` constant (``r in r``, empty quantifier domains,
contradictory conjunctions) while the bounds still declare free tuples.
These are exactly the shapes a fuzzer reaches within seconds, so the
whole path — ``to_cnf`` constant encoding, primary-variable allocation,
solving, enumeration, DIMACS export/import and the CLI exit codes — is
pinned here for both polarities and both CNF encodings.
"""

import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.kodkod import ast
from repro.kodkod.bounds import Bounds
from repro.kodkod.translate import Translator
from repro.kodkod.universe import Universe
from repro.sat import dimacs
from repro.sat.cnf import CNF
from repro.sat.solver import solve_cnf
from repro.sat.types import Status

SRC = Path(__file__).resolve().parents[2] / "src"

ENCODINGS = ["pg", "tseitin"]


def _bounds_with_free_relation(num_atoms=3):
    universe = Universe([f"a{i}" for i in range(num_atoms)])
    bounds = Bounds(universe)
    rel = ast.Relation("r", 1)
    bounds.bound(rel, universe.empty(1), universe.all_tuples(1))
    return rel, bounds


class TestConstantRoots:
    @pytest.mark.parametrize("encoding", ENCODINGS)
    def test_trivially_true_is_a_single_unit_clause(self, encoding):
        rel, bounds = _bounds_with_free_relation()
        translation = Translator(bounds, cnf_encoding=encoding).translate(
            ast.Subset(rel, rel))
        # One defining unit for the TRUE constant — not a duplicated pair.
        assert translation.cnf.num_clauses == 1
        assert solve_cnf(translation.cnf)[0] is Status.SAT

    @pytest.mark.parametrize("encoding", ENCODINGS)
    def test_trivially_false_is_contradictory_units(self, encoding):
        rel, bounds = _bounds_with_free_relation()
        translation = Translator(bounds, cnf_encoding=encoding).translate(
            ast.Not(ast.Subset(rel, rel)))
        assert translation.cnf.num_clauses == 2
        assert solve_cnf(translation.cnf)[0] is Status.UNSAT

    @pytest.mark.parametrize("encoding", ENCODINGS)
    def test_primary_vars_allocated_despite_constant_root(self, encoding):
        rel, bounds = _bounds_with_free_relation()
        translation = Translator(bounds, cnf_encoding=encoding).translate(
            ast.Subset(rel, rel))
        assert len(translation.primary_vars()) == 3
        assert translation.cnf.num_vars == 4  # 3 primaries + the constant

    def test_trivially_true_enumerates_the_whole_space(self):
        from repro.api import enumerate as api_enumerate
        from repro.api.problems import FormulaProblem

        rel, bounds = _bounds_with_free_relation()
        result = api_enumerate(FormulaProblem(ast.Subset(rel, rel), bounds))
        assert len(result.instances) == 8  # 2^3 valuations of r

    def test_trivially_false_enumerates_nothing(self):
        from repro.api import enumerate as api_enumerate
        from repro.api.problems import FormulaProblem

        rel, bounds = _bounds_with_free_relation()
        result = api_enumerate(
            FormulaProblem(ast.Not(ast.Subset(rel, rel)), bounds))
        assert result.instances == []

    @pytest.mark.parametrize("encoding", ENCODINGS)
    def test_constant_root_with_symmetry_breaking(self, encoding):
        rel, bounds = _bounds_with_free_relation()
        for formula, expected in ((ast.Subset(rel, rel), Status.SAT),
                                  (ast.Not(ast.Subset(rel, rel)),
                                   Status.UNSAT)):
            translation = Translator(
                bounds, symmetry=20, cnf_encoding=encoding).translate(formula)
            assert solve_cnf(translation.cnf)[0] is expected

    def test_empty_quantifier_domain_is_vacuously_true(self):
        universe = Universe(["a0", "a1"])
        bounds = Bounds(universe)
        rel = ast.Relation("r", 1)
        bounds.bound(rel, universe.empty(1), universe.empty(1))
        x = ast.Variable("x")
        translation = Translator(bounds).translate(
            ast.ForAll([(x, rel)], ast.Some(x)))
        assert solve_cnf(translation.cnf)[0] is Status.SAT


class TestDimacsRoundTripOfConstantRoots:
    @pytest.mark.parametrize("encoding", ENCODINGS)
    @pytest.mark.parametrize("polarity", ["true", "false"])
    def test_export_round_trips_and_preserves_verdict(
            self, encoding, polarity):
        rel, bounds = _bounds_with_free_relation()
        formula = ast.Subset(rel, rel)
        if polarity == "false":
            formula = ast.Not(formula)
        translation = Translator(bounds, cnf_encoding=encoding).translate(
            formula)
        text = translation.to_dimacs(comments=["edge case"])
        recovered = dimacs.loads(text)
        assert recovered.num_vars == translation.cnf.num_vars
        assert recovered.num_clauses == translation.cnf.num_clauses
        expected = Status.SAT if polarity == "true" else Status.UNSAT
        assert solve_cnf(recovered)[0] is expected

    def test_header_comments_document_primary_vars(self):
        rel, bounds = _bounds_with_free_relation()
        text = Translator(bounds).translate(
            ast.Subset(rel, rel)).to_dimacs()
        assert "primary vars: 3 of 4" in text
        assert "primary r(0)" in text


class TestDegenerateCnfs:
    def test_zero_clause_cnf_round_trips(self):
        cnf = CNF(3)
        text = dimacs.dumps(cnf)
        assert text == "p cnf 3 0\n"
        recovered = dimacs.loads(text)
        assert recovered.num_vars == 3
        assert recovered.num_clauses == 0
        assert solve_cnf(recovered)[0] is Status.SAT

    def test_empty_clause_dumps_canonically(self):
        cnf = CNF()
        cnf.add_clause([])
        text = dimacs.dumps(cnf)
        # A bare terminator line — no leading blank for strict parsers.
        assert text == "p cnf 0 1\n0\n"
        recovered = dimacs.loads(text)
        assert list(recovered.clauses()) == [()]
        assert solve_cnf(recovered)[0] is Status.UNSAT

    def test_totally_empty_cnf_is_satisfiable(self):
        status, model = solve_cnf(dimacs.loads("p cnf 0 0\n"))
        assert status is Status.SAT
        assert model is not None


class TestCliOnTrivialTranslations:
    def _solve_file(self, tmp_path, formula, bounds):
        path = tmp_path / "trivial.cnf"
        translation = Translator(bounds).translate(formula)
        path.write_text(translation.to_dimacs(), encoding="ascii")
        env = dict(os.environ)
        env["PYTHONPATH"] = str(SRC)
        return subprocess.run(
            [sys.executable, "-m", "repro.sat.dimacs", "solve", str(path)],
            env=env, capture_output=True, text=True, timeout=120,
        )

    def test_solve_exits_10_on_trivially_true(self, tmp_path):
        rel, bounds = _bounds_with_free_relation()
        proc = self._solve_file(tmp_path, ast.Subset(rel, rel), bounds)
        assert proc.returncode == 10, proc.stdout + proc.stderr
        assert "s SATISFIABLE" in proc.stdout

    def test_solve_exits_20_on_trivially_false(self, tmp_path):
        rel, bounds = _bounds_with_free_relation()
        proc = self._solve_file(
            tmp_path, ast.Not(ast.Subset(rel, rel)), bounds)
        assert proc.returncode == 20, proc.stdout + proc.stderr
        assert "s UNSATISFIABLE" in proc.stdout


class TestOpcodeHistogram:
    def test_histogram_counts_constants_inputs_and_gates(self):
        rel, bounds = _bounds_with_free_relation()
        translation = Translator(bounds).translate(
            ast.And([ast.Some(rel), ast.No(rel)]))
        histogram = translation.factory.opcode_histogram()
        assert histogram["const"] == 1
        assert histogram["input"] == 3
        assert histogram.get("and", 0) + histogram.get("or", 0) >= 1

    def test_constant_only_circuit(self):
        universe = Universe(["a0"])
        translation = Translator(Bounds(universe)).translate(ast.TrueF())
        assert translation.factory.opcode_histogram() == {"const": 1}
