"""Property test: SAT-based model finding agrees with ground evaluation.

For random small formulas and bounds, the set of instances found by the
translator+solver must be exactly the set of instances (enumerated by brute
force over the bounds) on which the ground evaluator says the formula holds.
This cross-validates the entire kodkod pipeline against its reference
semantics.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kodkod import ast
from repro.kodkod.bounds import Bounds
from repro.kodkod.evaluator import Evaluator, brute_force_instances
from repro.kodkod.engine import iter_solutions
from repro.kodkod.universe import Universe

ATOMS = ["a", "b", "c"]


@st.composite
def random_problems(draw):
    universe = Universe(ATOMS)
    r_un = ast.Relation("r", 1)
    s_un = ast.Relation("s", 1)
    edge = ast.Relation("edge", 2)
    bounds = Bounds(universe)
    # Keep the search space small: r, s over all atoms; edge over a sampled
    # upper bound.
    bounds.bound(r_un, universe.empty(1), universe.all_tuples(1))
    bounds.bound(s_un, universe.empty(1), universe.all_tuples(1))
    upper_pairs = draw(
        st.lists(
            st.tuples(st.sampled_from(ATOMS), st.sampled_from(ATOMS)),
            min_size=0,
            max_size=4,
            unique=True,
        )
    )
    bounds.bound(edge, universe.empty(2), universe.tuple_set(2, upper_pairs))

    x = ast.Variable("x")
    y = ast.Variable("y")

    def expr(depth) -> ast.Expr:
        choices = ["r", "s", "univ"]
        if depth > 0:
            choices += ["union", "inter", "diff", "join_edge"]
        kind = draw(st.sampled_from(choices))
        if kind == "r":
            return r_un
        if kind == "s":
            return s_un
        if kind == "univ":
            return ast.Univ()
        if kind == "join_edge":
            return ast.Join(expr(depth - 1), edge)
        left, right = expr(depth - 1), expr(depth - 1)
        if kind == "union":
            return ast.Union(left, right)
        if kind == "inter":
            return ast.Intersection(left, right)
        return ast.Difference(left, right)

    def formula(depth) -> ast.Formula:
        choices = ["some", "no", "one", "lone", "subset", "eq"]
        if depth > 0:
            choices += ["and", "or", "not", "forall", "exists"]
        kind = draw(st.sampled_from(choices))
        if kind == "some":
            return ast.Some(expr(1))
        if kind == "no":
            return ast.No(expr(1))
        if kind == "one":
            return ast.One(expr(1))
        if kind == "lone":
            return ast.Lone(expr(1))
        if kind == "subset":
            return ast.Subset(expr(1), expr(1))
        if kind == "eq":
            return ast.Equal(expr(1), expr(1))
        if kind == "and":
            return ast.And([formula(depth - 1), formula(depth - 1)])
        if kind == "or":
            return ast.Or([formula(depth - 1), formula(depth - 1)])
        if kind == "not":
            return ast.Not(formula(depth - 1))
        var = x if kind == "forall" else y
        body_expr = ast.Join(var, edge) if draw(st.booleans()) else r_un
        body = draw(
            st.sampled_from(
                [
                    ast.Some(body_expr),
                    ast.Subset(var, r_un),
                    ast.No(ast.Intersection(var, s_un)),
                ]
            )
        )
        if kind == "forall":
            return ast.ForAll([(var, ast.Univ())], body)
        return ast.Exists([(var, ast.Univ())], body)

    return formula(2), bounds


class TestPipelineAgainstEvaluator:
    @given(random_problems())
    @settings(max_examples=40, deadline=None)
    def test_solutions_match_brute_force(self, problem):
        formula, bounds = problem

        def key(instance):
            return tuple(
                (rel.name, frozenset(instance.value_of(rel)))
                for rel in sorted(bounds.relations(), key=lambda r: r.name)
            )

        sat_instances = {key(i) for i in iter_solutions(formula, bounds)}
        expected = {
            key(i)
            for i in brute_force_instances(bounds)
            if Evaluator(i).check(formula)
        }
        assert sat_instances == expected
