"""Tests for the incremental model-finding Session."""

import pytest

from repro.kodkod import Bounds, Session, Universe, relation
from repro.kodkod import ast
from repro.sat.solver import Solver


@pytest.fixture
def three_atoms():
    return Universe(["a", "b", "c"])


def _free_unary(universe):
    r = relation("r", 1)
    bounds = Bounds(universe)
    bounds.bound(r, universe.empty(1), universe.all_tuples(1))
    return r, bounds


class TestSessionSolving:
    def test_single_solve(self, three_atoms):
        r, bounds = _free_unary(three_atoms)
        session = Session(r.some(), bounds)
        solution = session.solve()
        assert solution.satisfiable
        assert len(solution.instance.value_of(r)) >= 1

    def test_solver_persists_across_queries(self, three_atoms):
        r, bounds = _free_unary(three_atoms)
        session = Session(r.some(), bounds)
        first_solver = session.solver
        session.solve()
        session.solve()
        assert session.solver is first_solver

    def test_solver_stats_accumulate(self, three_atoms):
        r, bounds = _free_unary(three_atoms)
        session = Session(r.some(), bounds)
        solution = session.solve()
        assert "conflicts" in solution.solver_stats
        assert "db_reductions" in solution.solver_stats
        assert session.clause_db_stats()["problem_clauses"] > 0

    def test_custom_solver_injected(self, three_atoms):
        r, bounds = _free_unary(three_atoms)
        solver = Solver(max_learned=10)
        session = Session(r.some(), bounds, solver=solver)
        assert session.solver is solver
        assert session.solve().satisfiable


class TestSessionAssumptions:
    def test_assume_tuple_present(self, three_atoms):
        r, bounds = _free_unary(three_atoms)
        session = Session(ast.TrueF(), bounds)
        lit = session.assume_tuple(r, ("b",), present=True)
        solution = session.solve([lit])
        assert solution.satisfiable
        assert ("b",) in solution.instance.value_of(r)

    def test_assume_tuple_absent(self, three_atoms):
        r, bounds = _free_unary(three_atoms)
        session = Session(r.count_eq(3), bounds)
        lit = session.assume_tuple(r, ("b",), present=False)
        assert not session.solve([lit]).satisfiable
        # The session survives an UNSAT answer under assumptions.
        assert session.solve().satisfiable

    def test_conflicting_assumptions_do_not_poison_session(self, three_atoms):
        r, bounds = _free_unary(three_atoms)
        session = Session(ast.TrueF(), bounds)
        yes = session.assume_tuple(r, ("a",), present=True)
        no = session.assume_tuple(r, ("a",), present=False)
        assert not session.solve([yes, no]).satisfiable
        assert session.solve().satisfiable

    def test_assumptions_with_symmetry_are_canonical_only(self, three_atoms):
        # Documented caveat: with symmetry breaking on, assumptions are
        # answered over canonical models only, so an assumption that only
        # a non-canonical model satisfies may be refuted.  The default
        # (symmetry=0) answers over the full model space.
        r, bounds = _free_unary(three_atoms)
        full = Session(ast.TrueF(), bounds, symmetry=0)
        lit = full.assume_tuple(r, ("a",), present=True)
        assert full.solve([lit]).satisfiable
        canonical = Session(ast.TrueF(), bounds, symmetry=20)
        results = [
            canonical.solve([canonical.assume_tuple(r, (atom,), present=True)])
            for atom in ("a", "b", "c")
        ]
        # At least one singleton-ish assumption survives (the orbit keeps
        # a witness), even though some atoms' assumptions may be refuted.
        assert any(res.satisfiable for res in results)

    def test_assume_non_free_tuple_raises(self, three_atoms):
        r = relation("r", 1)
        bounds = Bounds(three_atoms)
        bounds.bound_exactly(r, three_atoms.tuple_set(1, [("a",)]))
        session = Session(ast.TrueF(), bounds)
        with pytest.raises(KeyError):
            session.assume_tuple(r, ("a",))


class TestSessionEnumeration:
    def test_blocking_walks_all_models(self, three_atoms):
        r, bounds = _free_unary(three_atoms)
        session = Session(ast.TrueF(), bounds)
        seen = set()
        for instance in session.iter_solutions():
            key = frozenset(instance.value_of(r))
            assert key not in seen
            seen.add(key)
        assert len(seen) == 8

    def test_limit_zero_yields_nothing(self, three_atoms):
        r, bounds = _free_unary(three_atoms)
        session = Session(ast.TrueF(), bounds)
        assert list(session.iter_solutions(limit=0)) == []

    def test_negative_limit_rejected(self, three_atoms):
        r, bounds = _free_unary(three_atoms)
        session = Session(ast.TrueF(), bounds)
        with pytest.raises(ValueError):
            list(session.iter_solutions(limit=-1))

    def test_block_current_requires_a_model(self, three_atoms):
        r, bounds = _free_unary(three_atoms)
        session = Session(ast.FalseF(), bounds)
        assert not session.solve().satisfiable
        assert not session.block_current()

    def test_enumeration_resumable_after_assumption_query(self, three_atoms):
        r, bounds = _free_unary(three_atoms)
        session = Session(ast.TrueF(), bounds)
        # Taking one model via next() suspends the generator before it
        # blocks, so the session still holds the model for block_current.
        first = next(iter(session.iter_solutions(limit=1)))
        assert session.block_current()
        lit = session.assume_tuple(r, ("a",), present=True)
        assert session.solve([lit]).satisfiable
        # Remaining enumeration excludes the first model.
        rest = {
            frozenset(i.value_of(r)) for i in session.iter_solutions()
        }
        assert frozenset(first.value_of(r)) not in rest
