"""Tests for the incremental model-finding Session and DeltaSession."""

import pytest

from repro.kodkod import Bounds, DeltaSession, Session, Universe, relation
from repro.kodkod import ast
from repro.sat.solver import Solver


@pytest.fixture
def three_atoms():
    return Universe(["a", "b", "c"])


def _free_unary(universe):
    r = relation("r", 1)
    bounds = Bounds(universe)
    bounds.bound(r, universe.empty(1), universe.all_tuples(1))
    return r, bounds


class TestSessionSolving:
    def test_single_solve(self, three_atoms):
        r, bounds = _free_unary(three_atoms)
        session = Session(r.some(), bounds)
        solution = session.solve()
        assert solution.satisfiable
        assert len(solution.instance.value_of(r)) >= 1

    def test_solver_persists_across_queries(self, three_atoms):
        r, bounds = _free_unary(three_atoms)
        session = Session(r.some(), bounds)
        first_solver = session.solver
        session.solve()
        session.solve()
        assert session.solver is first_solver

    def test_solver_stats_accumulate(self, three_atoms):
        r, bounds = _free_unary(three_atoms)
        session = Session(r.some(), bounds)
        solution = session.solve()
        assert "conflicts" in solution.solver_stats
        assert "db_reductions" in solution.solver_stats
        assert session.clause_db_stats()["problem_clauses"] > 0

    def test_custom_solver_injected(self, three_atoms):
        r, bounds = _free_unary(three_atoms)
        solver = Solver(max_learned=10)
        session = Session(r.some(), bounds, solver=solver)
        assert session.solver is solver
        assert session.solve().satisfiable


class TestSessionAssumptions:
    def test_assume_tuple_present(self, three_atoms):
        r, bounds = _free_unary(three_atoms)
        session = Session(ast.TrueF(), bounds)
        lit = session.assume_tuple(r, ("b",), present=True)
        solution = session.solve([lit])
        assert solution.satisfiable
        assert ("b",) in solution.instance.value_of(r)

    def test_assume_tuple_absent(self, three_atoms):
        r, bounds = _free_unary(three_atoms)
        session = Session(r.count_eq(3), bounds)
        lit = session.assume_tuple(r, ("b",), present=False)
        assert not session.solve([lit]).satisfiable
        # The session survives an UNSAT answer under assumptions.
        assert session.solve().satisfiable

    def test_conflicting_assumptions_do_not_poison_session(self, three_atoms):
        r, bounds = _free_unary(three_atoms)
        session = Session(ast.TrueF(), bounds)
        yes = session.assume_tuple(r, ("a",), present=True)
        no = session.assume_tuple(r, ("a",), present=False)
        assert not session.solve([yes, no]).satisfiable
        assert session.solve().satisfiable

    def test_assumptions_with_symmetry_are_canonical_only(self, three_atoms):
        # Documented caveat: with symmetry breaking on, assumptions are
        # answered over canonical models only, so an assumption that only
        # a non-canonical model satisfies may be refuted.  The default
        # (symmetry=0) answers over the full model space.
        r, bounds = _free_unary(three_atoms)
        full = Session(ast.TrueF(), bounds, symmetry=0)
        lit = full.assume_tuple(r, ("a",), present=True)
        assert full.solve([lit]).satisfiable
        canonical = Session(ast.TrueF(), bounds, symmetry=20)
        results = [
            canonical.solve([canonical.assume_tuple(r, (atom,), present=True)])
            for atom in ("a", "b", "c")
        ]
        # At least one singleton-ish assumption survives (the orbit keeps
        # a witness), even though some atoms' assumptions may be refuted.
        assert any(res.satisfiable for res in results)

    def test_assume_non_free_tuple_raises(self, three_atoms):
        r = relation("r", 1)
        bounds = Bounds(three_atoms)
        bounds.bound_exactly(r, three_atoms.tuple_set(1, [("a",)]))
        session = Session(ast.TrueF(), bounds)
        with pytest.raises(KeyError):
            session.assume_tuple(r, ("a",))


class TestSessionEnumeration:
    def test_blocking_walks_all_models(self, three_atoms):
        r, bounds = _free_unary(three_atoms)
        session = Session(ast.TrueF(), bounds)
        seen = set()
        for instance in session.iter_solutions():
            key = frozenset(instance.value_of(r))
            assert key not in seen
            seen.add(key)
        assert len(seen) == 8

    def test_limit_zero_yields_nothing(self, three_atoms):
        r, bounds = _free_unary(three_atoms)
        session = Session(ast.TrueF(), bounds)
        assert list(session.iter_solutions(limit=0)) == []

    def test_negative_limit_rejected(self, three_atoms):
        r, bounds = _free_unary(three_atoms)
        session = Session(ast.TrueF(), bounds)
        with pytest.raises(ValueError):
            list(session.iter_solutions(limit=-1))

    def test_block_current_requires_a_model(self, three_atoms):
        r, bounds = _free_unary(three_atoms)
        session = Session(ast.FalseF(), bounds)
        assert not session.solve().satisfiable
        assert not session.block_current()

    def test_enumeration_resumable_after_assumption_query(self, three_atoms):
        r, bounds = _free_unary(three_atoms)
        session = Session(ast.TrueF(), bounds)
        # Taking one model via next() suspends the generator before it
        # blocks, so the session still holds the model for block_current.
        first = next(iter(session.iter_solutions(limit=1)))
        assert session.block_current()
        lit = session.assume_tuple(r, ("a",), present=True)
        assert session.solve([lit]).satisfiable
        # Remaining enumeration excludes the first model.
        rest = {
            frozenset(i.value_of(r)) for i in session.iter_solutions()
        }
        assert frozenset(first.value_of(r)) not in rest


class TestScopedBlocking:
    """Regression: ``block_current`` after ``solve(assumptions=...)`` used
    to install a *permanent* blocking clause, excluding a model found only
    under those assumptions from every later assumption-free query."""

    def test_blocking_under_assumptions_is_scoped(self, three_atoms):
        r, bounds = _free_unary(three_atoms)
        session = Session(ast.TrueF(), bounds)
        lit = session.assume_tuple(r, ("a",), present=True)
        assert session.solve([lit]).satisfiable
        assert session.block_current()
        # The assumption-free model space must be untouched: all 8 models
        # (2^3 valuations of a free unary relation) are still reachable.
        seen = {frozenset(i.value_of(r)) for i in session.iter_solutions()}
        assert len(seen) == 8

    def test_scoped_blocking_enumerates_under_assumptions(self, three_atoms):
        r, bounds = _free_unary(three_atoms)
        session = Session(ast.TrueF(), bounds)
        lit = session.assume_tuple(r, ("a",), present=True)
        seen = set()
        while True:
            solution = session.solve([lit])
            if not solution.satisfiable:
                break
            key = frozenset(solution.instance.value_of(r))
            assert key not in seen, "blocking clause did not stick"
            seen.add(key)
            assert session.block_current()
        # Exactly the 4 models containing ("a",) were walked.
        assert len(seen) == 4
        assert all(("a",) in key for key in seen)
        # ... and the plain query still sees the whole space.
        assert session.solve().satisfiable

    def test_blocking_scoped_to_the_exact_assumption_set(self, three_atoms):
        r, bounds = _free_unary(three_atoms)
        session = Session(ast.TrueF(), bounds)
        lit_a = session.assume_tuple(r, ("a",), present=True)
        lit_b = session.assume_tuple(r, ("b",), present=True)
        while session.solve([lit_a]).satisfiable:
            assert session.block_current()
        # [lit_a] is exhausted, but the distinct set [lit_a, lit_b] is a
        # different scope and still has all its models.
        assert not session.solve([lit_a]).satisfiable
        assert session.solve([lit_a, lit_b]).satisfiable

    def test_plain_blocking_still_permanent(self, three_atoms):
        r, bounds = _free_unary(three_atoms)
        session = Session(ast.TrueF(), bounds)
        first = session.solve()
        assert first.satisfiable
        blocked = frozenset(first.instance.value_of(r))
        assert session.block_current()
        lit = session.assume_tuple(r, ("a",), present=True)
        # An assumption-free blocking clause binds every later query,
        # including assumption queries.
        solution = session.solve([lit])
        if solution.satisfiable:
            assert frozenset(solution.instance.value_of(r)) != blocked


class TestDeltaSession:
    def test_dropped_tuples_become_absence_assumptions(self, three_atoms):
        r, bounds = _free_unary(three_atoms)
        delta = DeltaSession(r.some(), bounds)
        assumptions = delta.assumptions_for(
            dropped=[("r", 1, ("a",)), ("r", 1, ("b",))], promoted=[])
        assert assumptions is not None and len(assumptions) == 2
        solution = delta.solve(assumptions)
        assert solution.satisfiable
        assert set(solution.instance.value_of(r)) == {("c",)}

    def test_promoted_tuples_become_presence_assumptions(self, three_atoms):
        r, bounds = _free_unary(three_atoms)
        delta = DeltaSession(ast.TrueF(), bounds)
        assumptions = delta.assumptions_for(
            dropped=[], promoted=[("r", 1, ("c",))])
        solution = delta.solve(assumptions)
        assert solution.satisfiable
        assert ("c",) in solution.instance.value_of(r)

    def test_narrowing_to_unsat_matches_fresh_solve(self, three_atoms):
        r, bounds = _free_unary(three_atoms)
        delta = DeltaSession(r.some(), bounds)
        assumptions = delta.assumptions_for(
            dropped=[("r", 1, (a,)) for a in ("a", "b", "c")], promoted=[])
        assert not delta.solve(assumptions).satisfiable
        # The session survives: the unnarrowed anchor is still SAT.
        assert delta.solve().satisfiable

    def test_unknown_relation_returns_none(self, three_atoms):
        r, bounds = _free_unary(three_atoms)
        delta = DeltaSession(r.some(), bounds)
        assert delta.assumptions_for(
            dropped=[("nope", 1, ("a",))], promoted=[]) is None

    def test_unmentioned_relation_is_still_assumable(self, three_atoms):
        # ``s`` is bounded but unmentioned by the formula; the translator
        # still allocates primary variables for every bounded relation
        # (enumeration needs them), so its free tuples remain assumable.
        r, bounds = _free_unary(three_atoms)
        s = relation("s", 1)
        bounds.bound(s, three_atoms.empty(1), three_atoms.all_tuples(1))
        delta = DeltaSession(r.some(), bounds)
        assumptions = delta.assumptions_for(
            dropped=[("s", 1, ("a",))], promoted=[("s", 1, ("b",))])
        assert assumptions is not None
        solution = delta.solve(assumptions)
        assert solution.satisfiable
        values = set(solution.instance.value_of(s))
        assert ("a",) not in values and ("b",) in values

    def test_solver_persists_across_delta_queries(self, three_atoms):
        r, bounds = _free_unary(three_atoms)
        delta = DeltaSession(r.some(), bounds)
        solver = delta.session.solver
        delta.solve(delta.assumptions_for([("r", 1, ("a",))], []))
        delta.solve(delta.assumptions_for([("r", 1, ("b",))], []))
        assert delta.session.solver is solver
