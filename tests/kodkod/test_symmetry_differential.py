"""Seeded-random differential tests for symmetry breaking.

Complements the hypothesis-based pipeline test with a deterministic,
seed-parametrized sweep (the in-repo twin of the campaign's ``symmetry``
oracle): for random relational problems, lex-leader symmetry breaking must
preserve the SAT/UNSAT verdict and may only *shrink* the model count.
"""

import pytest

from repro.campaign import ScenarioSpec, materialize
from repro.kodkod.engine import count_solutions, solve
from repro.kodkod.evaluator import Evaluator
from repro.kodkod.symmetry import DEFAULT_SBP_LENGTH


def problem(seed, num_atoms=3, depth=2, max_edges=4):
    scenario = materialize(ScenarioSpec.make(
        "relational", seed, num_atoms=num_atoms, depth=depth,
        max_edges=max_edges))
    return scenario.formula, scenario.bounds


class TestSymmetryPreservesVerdict:
    @pytest.mark.parametrize("seed", range(40))
    def test_same_verdict_with_and_without_sbp(self, seed):
        formula, bounds = problem(seed)
        with_sbp = solve(formula, bounds, symmetry=DEFAULT_SBP_LENGTH)
        without = solve(formula, bounds, symmetry=0)
        assert with_sbp.satisfiable == without.satisfiable

    @pytest.mark.parametrize("seed", range(40, 55))
    def test_same_verdict_on_four_atoms(self, seed):
        formula, bounds = problem(seed, num_atoms=4)
        with_sbp = solve(formula, bounds, symmetry=DEFAULT_SBP_LENGTH)
        without = solve(formula, bounds, symmetry=0)
        assert with_sbp.satisfiable == without.satisfiable

    @pytest.mark.parametrize("seed", range(15))
    def test_sbp_model_is_a_real_model(self, seed):
        formula, bounds = problem(seed)
        solution = solve(formula, bounds, symmetry=DEFAULT_SBP_LENGTH)
        if solution.satisfiable:
            assert Evaluator(solution.instance).check(formula)


class TestSymmetryOnlyPrunes:
    @pytest.mark.parametrize("seed", range(20))
    def test_canonical_count_never_exceeds_full_count(self, seed):
        formula, bounds = problem(seed, depth=1)
        full = count_solutions(formula, bounds, symmetry=0)
        canonical = count_solutions(formula, bounds,
                                    symmetry=DEFAULT_SBP_LENGTH)
        assert canonical <= full
        # Orbits are never emptied: some model survives iff any existed.
        assert (canonical > 0) == (full > 0)
