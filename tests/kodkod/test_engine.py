"""End-to-end tests of the relational model-finding engine."""

import pytest

from repro.kodkod import (
    Bounds,
    Evaluator,
    Iden,
    NoneExpr,
    Universe,
    Univ,
    and_all,
    all_different,
    count_solutions,
    exists,
    forall,
    iter_solutions,
    relation,
    solve,
    variable,
)
from repro.kodkod import ast


@pytest.fixture
def three_atoms():
    return Universe(["a", "b", "c"])


class TestBasicSolving:
    def test_trivially_true(self, three_atoms):
        assert solve(ast.TrueF(), Bounds(three_atoms)).satisfiable

    def test_trivially_false(self, three_atoms):
        assert not solve(ast.FalseF(), Bounds(three_atoms)).satisfiable

    def test_some_empty_upper_bound_unsat(self, three_atoms):
        r = relation("r", 1)
        b = Bounds(three_atoms)
        b.bound(r, three_atoms.empty(1), three_atoms.empty(1))
        assert not solve(r.some(), b).satisfiable

    def test_lower_bound_respected(self, three_atoms):
        r = relation("r", 1)
        b = Bounds(three_atoms)
        fixed = three_atoms.tuple_set(1, [("a",)])
        b.bound(r, fixed, three_atoms.all_tuples(1))
        sol = solve(ast.TrueF(), b)
        assert sol.satisfiable
        assert ("a",) in sol.instance.value_of(r)

    def test_exact_bound_is_constant(self, three_atoms):
        r = relation("r", 1)
        b = Bounds(three_atoms)
        fixed = three_atoms.tuple_set(1, [("b",)])
        b.bound_exactly(r, fixed)
        sol = solve(ast.TrueF(), b)
        assert set(sol.instance.value_of(r)) == {("b",)}

    def test_unbound_relation_raises(self, three_atoms):
        r = relation("r", 1)
        with pytest.raises(KeyError):
            solve(r.some(), Bounds(three_atoms))

    def test_one_multiplicity(self, three_atoms):
        r = relation("r", 1)
        b = Bounds(three_atoms)
        b.bound(r, three_atoms.empty(1), three_atoms.all_tuples(1))
        sol = solve(r.one(), b)
        assert sol.satisfiable
        assert len(sol.instance.value_of(r)) == 1

    def test_cardinality_eq(self, three_atoms):
        r = relation("r", 1)
        b = Bounds(three_atoms)
        b.bound(r, three_atoms.empty(1), three_atoms.all_tuples(1))
        sol = solve(r.count_eq(2), b)
        assert sol.satisfiable
        assert len(sol.instance.value_of(r)) == 2

    def test_cardinality_unsatisfiable(self, three_atoms):
        r = relation("r", 1)
        b = Bounds(three_atoms)
        b.bound(r, three_atoms.empty(1), three_atoms.all_tuples(1))
        assert not solve(r.count_eq(4), b).satisfiable


class TestRelationalOperators:
    def _unary_bounds(self, universe, *names):
        b = Bounds(universe)
        rels = []
        for name in names:
            r = relation(name, 1)
            b.bound(r, universe.empty(1), universe.all_tuples(1))
            rels.append(r)
        return b, rels

    def test_union_semantics(self, three_atoms):
        b, (r, s) = self._unary_bounds(three_atoms, "r", "s")
        t = relation("t", 1)
        b.bound_exactly(t, three_atoms.all_tuples(1))
        sol = solve((r + s).eq(t) & r.no(), b)
        assert sol.satisfiable
        assert len(sol.instance.value_of(s)) == 3

    def test_intersection_semantics(self, three_atoms):
        b, (r, s) = self._unary_bounds(three_atoms, "r", "s")
        f = (r & s).no() & r.some() & s.some()
        sol = solve(f, b)
        assert sol.satisfiable
        inst = sol.instance
        assert not (set(inst.value_of(r)) & set(inst.value_of(s)))

    def test_difference_semantics(self, three_atoms):
        b, (r, s) = self._unary_bounds(three_atoms, "r", "s")
        sol = solve((r - s).some(), b)
        assert sol.satisfiable
        inst = sol.instance
        assert set(inst.value_of(r)) - set(inst.value_of(s))

    def test_join_navigates(self, three_atoms):
        edge = relation("edge", 2)
        b = Bounds(three_atoms)
        b.bound_exactly(edge, three_atoms.tuple_set(2, [("a", "b"), ("b", "c")]))
        x = variable("x")
        # some x | x.edge = {c}: only b.edge = {c}
        c_set = relation("cset", 1)
        b.bound_exactly(c_set, three_atoms.tuple_set(1, [("c",)]))
        f = exists(x, Univ(), x.join(edge).eq(c_set))
        assert solve(f, b).satisfiable

    def test_transpose(self, three_atoms):
        edge = relation("edge", 2)
        b = Bounds(three_atoms)
        b.bound(edge, three_atoms.empty(2), three_atoms.all_tuples(2))
        f = edge.some() & (~edge).eq(edge)  # nonempty symmetric
        sol = solve(f, b)
        assert sol.satisfiable
        pairs = set(sol.instance.value_of(edge))
        assert all((b_, a) in pairs for a, b_ in pairs)

    def test_closure_reachability(self, three_atoms):
        edge = relation("edge", 2)
        b = Bounds(three_atoms)
        b.bound_exactly(edge, three_atoms.tuple_set(2, [("a", "b"), ("b", "c")]))
        sol = solve(ast.TrueF(), b)
        ev = Evaluator(sol.instance)
        closed = ev.tuples(edge.closure())
        assert set(closed) == {("a", "b"), ("b", "c"), ("a", "c")}

    def test_closure_constraint(self, three_atoms):
        edge = relation("edge", 2)
        b = Bounds(three_atoms)
        b.bound(edge, three_atoms.empty(2), three_atoms.all_tuples(2))
        x = variable("x")
        y = variable("y")
        # Strongly connected & irreflexive edge relation on 3 atoms exists.
        f = and_all([
            forall(x, Univ(), forall(y, Univ(),
                   x.neq(y).implies(x.product(y).in_(edge.closure())))),
            forall(x, Univ(), ast.Not(x.product(x).in_(edge))),
        ])
        sol = solve(f, b)
        assert sol.satisfiable
        ev = Evaluator(sol.instance)
        assert ev.check(f)

    def test_iden(self, three_atoms):
        edge = relation("edge", 2)
        b = Bounds(three_atoms)
        b.bound(edge, three_atoms.empty(2), three_atoms.all_tuples(2))
        sol = solve(edge.eq(Iden()) , b)
        assert sol.satisfiable
        assert set(sol.instance.value_of(edge)) == {(a, a) for a in "abc"}

    def test_none_expr(self, three_atoms):
        r = relation("r", 1)
        b = Bounds(three_atoms)
        b.bound(r, three_atoms.empty(1), three_atoms.all_tuples(1))
        sol = solve(r.eq(NoneExpr(1)), b)
        assert sol.satisfiable
        assert len(sol.instance.value_of(r)) == 0

    def test_product_arity(self, three_atoms):
        r = relation("r", 1)
        s = relation("s", 1)
        b = Bounds(three_atoms)
        b.bound_exactly(r, three_atoms.tuple_set(1, [("a",)]))
        b.bound_exactly(s, three_atoms.tuple_set(1, [("b",)]))
        sol = solve(ast.TrueF(), b)
        ev = Evaluator(sol.instance)
        assert set(ev.tuples(r.product(s))) == {("a", "b")}


class TestQuantifiers:
    def test_forall_vacuous_over_empty_domain(self, three_atoms):
        r = relation("r", 1)
        b = Bounds(three_atoms)
        b.bound_exactly(r, three_atoms.empty(1))
        x = variable("x")
        f = forall(x, r, ast.FalseF())  # vacuously true
        assert solve(f, b).satisfiable

    def test_exists_false_over_empty_domain(self, three_atoms):
        r = relation("r", 1)
        b = Bounds(three_atoms)
        b.bound_exactly(r, three_atoms.empty(1))
        x = variable("x")
        f = exists(x, r, ast.TrueF())
        assert not solve(f, b).satisfiable

    def test_nested_quantifiers(self, three_atoms):
        likes = relation("likes", 2)
        b = Bounds(three_atoms)
        b.bound(likes, three_atoms.empty(2), three_atoms.all_tuples(2))
        x, y = variable("x"), variable("y")
        everyone_likes_someone = forall(
            x, Univ(), exists(y, Univ(), x.product(y).in_(likes))
        )
        sol = solve(everyone_likes_someone, b)
        assert sol.satisfiable
        assert Evaluator(sol.instance).check(everyone_likes_someone)

    def test_multi_decl_quantifier(self, three_atoms):
        r = relation("r", 1)
        b = Bounds(three_atoms)
        b.bound(r, three_atoms.empty(1), three_atoms.all_tuples(1))
        x, y = variable("x"), variable("y")
        f = forall((x, r), (y, r), x.eq(y)) & r.some()  # r is a singleton
        sol = solve(f, b)
        assert sol.satisfiable
        assert len(sol.instance.value_of(r)) == 1

    def test_all_different(self, three_atoms):
        x, y = variable("x"), variable("y")
        f = exists((x, Univ()), (y, Univ()), all_different([x, y]))
        assert solve(f, Bounds(three_atoms)).satisfiable


class TestEnumeration:
    def test_count_subsets(self, three_atoms):
        r = relation("r", 1)
        b = Bounds(three_atoms)
        b.bound(r, three_atoms.empty(1), three_atoms.all_tuples(1))
        assert count_solutions(ast.TrueF(), b) == 8

    def test_count_with_constraint(self, three_atoms):
        r = relation("r", 1)
        b = Bounds(three_atoms)
        b.bound(r, three_atoms.empty(1), three_atoms.all_tuples(1))
        assert count_solutions(r.one(), b) == 3

    def test_every_solution_satisfies(self, three_atoms):
        edge = relation("edge", 2)
        b = Bounds(three_atoms)
        b.bound(edge, three_atoms.empty(2), three_atoms.all_tuples(2))
        f = (~edge).eq(edge)
        count = 0
        for inst in iter_solutions(f, b):
            assert Evaluator(inst).check(f)
            count += 1
        # Symmetric relations over 3 atoms: 2^(3 diag + 3 off-diag pairs) = 64.
        assert count == 64

    def test_limit(self, three_atoms):
        r = relation("r", 1)
        b = Bounds(three_atoms)
        b.bound(r, three_atoms.empty(1), three_atoms.all_tuples(1))
        assert count_solutions(ast.TrueF(), b, limit=3) == 3

    def test_limit_zero(self, three_atoms):
        r = relation("r", 1)
        b = Bounds(three_atoms)
        b.bound(r, three_atoms.empty(1), three_atoms.all_tuples(1))
        assert count_solutions(ast.TrueF(), b, limit=0) == 0
        assert list(iter_solutions(ast.TrueF(), b, limit=0)) == []

    def test_negative_limit_rejected(self, three_atoms):
        r = relation("r", 1)
        b = Bounds(three_atoms)
        b.bound(r, three_atoms.empty(1), three_atoms.all_tuples(1))
        with pytest.raises(ValueError):
            list(iter_solutions(ast.TrueF(), b, limit=-1))

    def test_symmetry_enumerates_only_canonical_instances(self, three_atoms):
        # 3 interchangeable atoms: 8 subsets fall into 4 isomorphism
        # classes (one per cardinality); symmetry breaking yields exactly
        # the canonical representative of each.
        r = relation("r", 1)
        b = Bounds(three_atoms)
        b.bound(r, three_atoms.empty(1), three_atoms.all_tuples(1))
        sizes = sorted(
            len(inst.value_of(r))
            for inst in iter_solutions(ast.TrueF(), b, symmetry=20)
        )
        assert sizes == [0, 1, 2, 3]
        assert count_solutions(ast.TrueF(), b) == 8

    def test_solutions_distinct(self, three_atoms):
        r = relation("r", 1)
        b = Bounds(three_atoms)
        b.bound(r, three_atoms.empty(1), three_atoms.all_tuples(1))
        seen = set()
        for inst in iter_solutions(ast.TrueF(), b):
            key = frozenset(inst.value_of(r))
            assert key not in seen
            seen.add(key)


class TestIfExpr:
    def test_conditional_expression(self, three_atoms):
        r = relation("r", 1)
        s = relation("s", 1)
        b = Bounds(three_atoms)
        b.bound(r, three_atoms.empty(1), three_atoms.all_tuples(1))
        b.bound_exactly(s, three_atoms.tuple_set(1, [("a",)]))
        cond = r.some()
        picked = ast.IfExpr(cond, s, NoneExpr(1))
        f = r.some() & picked.eq(s)
        assert solve(f, b).satisfiable


class TestComprehension:
    def test_comprehension_collects_satisfying_atoms(self, three_atoms):
        from repro.kodkod import comprehension

        edge = relation("edge", 2)
        b = Bounds(three_atoms)
        b.bound_exactly(edge, three_atoms.tuple_set(2, [("a", "b"), ("a", "c")]))
        x = variable("x")
        sources = comprehension(x, Univ(), x.join(edge).some())
        sol = solve(ast.TrueF(), b)
        ev = Evaluator(sol.instance)
        assert set(ev.tuples(sources)) == {("a",)}

    def test_comprehension_in_formula(self, three_atoms):
        from repro.kodkod import comprehension

        edge = relation("edge", 2)
        b = Bounds(three_atoms)
        b.bound(edge, three_atoms.empty(2), three_atoms.all_tuples(2))
        x = variable("x")
        sources = comprehension(x, Univ(), x.join(edge).some())
        f = sources.count_eq(2)
        sol = solve(f, b)
        assert sol.satisfiable
        assert Evaluator(sol.instance).check(f)
