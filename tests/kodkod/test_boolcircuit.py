"""Tests for the hash-consed boolean circuit factory."""

import itertools

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kodkod.boolcircuit import FALSE, TRUE, BooleanFactory
from repro.sat.solver import solve_cnf
from repro.sat.types import Status


class TestConstruction:
    def setup_method(self):
        self.f = BooleanFactory()

    def test_and_constant_folding(self):
        a = self.f.fresh_input()
        assert self.f.and_([a, TRUE]) == a
        assert self.f.and_([a, FALSE]) == FALSE
        assert self.f.and_([]) == TRUE

    def test_or_constant_folding(self):
        a = self.f.fresh_input()
        assert self.f.or_([a, FALSE]) == a
        assert self.f.or_([a, TRUE]) == TRUE
        assert self.f.or_([]) == FALSE

    def test_complement_collapse(self):
        a = self.f.fresh_input()
        assert self.f.and_([a, -a]) == FALSE
        assert self.f.or_([a, -a]) == TRUE

    def test_duplicate_collapse(self):
        a = self.f.fresh_input()
        assert self.f.and_([a, a]) == a
        assert self.f.or_([a, a]) == a

    def test_hash_consing(self):
        a, b = self.f.fresh_input(), self.f.fresh_input()
        assert self.f.and_([a, b]) == self.f.and_([b, a])
        assert self.f.or_([a, b]) == self.f.or_([b, a])

    def test_negation_involution(self):
        a = self.f.fresh_input()
        assert self.f.not_(self.f.not_(a)) == a

    def test_nested_and_flattened(self):
        a, b, c = (self.f.fresh_input() for _ in range(3))
        nested = self.f.and_([a, self.f.and_([b, c])])
        flat = self.f.and_([a, b, c])
        assert nested == flat

    def test_implies(self):
        a, b = self.f.fresh_input(), self.f.fresh_input()
        node = self.f.implies(a, b)
        assert self.f.evaluate(node, {a: True, b: False}) is False
        assert self.f.evaluate(node, {a: False, b: False}) is True

    def test_iff(self):
        a, b = self.f.fresh_input(), self.f.fresh_input()
        node = self.f.iff(a, b)
        for va, vb in itertools.product([False, True], repeat=2):
            assert self.f.evaluate(node, {a: va, b: vb}) == (va == vb)

    def test_ite(self):
        c, t, e = (self.f.fresh_input() for _ in range(3))
        node = self.f.ite(c, t, e)
        for vc, vt, ve in itertools.product([False, True], repeat=3):
            expected = vt if vc else ve
            assert self.f.evaluate(node, {c: vc, t: vt, e: ve}) == expected

    def test_gate_count(self):
        a, b = self.f.fresh_input(), self.f.fresh_input()
        before = self.f.num_gates
        self.f.and_([a, b])
        self.f.and_([a, b])  # shared
        assert self.f.num_gates == before + 1


class TestDeepCircuits:
    def test_evaluate_deep_chain_does_not_overflow(self):
        """Regression: the recursive evaluator overflowed Python's recursion
        limit on deep circuits; the iterative rewrite must not."""
        f = BooleanFactory()
        depth = 50_000
        x = f.fresh_input()
        free_inputs = [x]
        node = x
        for i in range(depth):
            y = f.fresh_input()
            free_inputs.append(y)
            # Alternate gate kinds and negations so nothing flattens away.
            if i % 2:
                node = f.and_([-node, y])
            else:
                node = f.or_([node, -y])
        inputs = {n: (n % 3 == 0) for n in free_inputs}
        assert f.evaluate(node, inputs) in (True, False)
        assert f.evaluate(-node, inputs) == (not f.evaluate(node, inputs))

    def test_to_cnf_deep_chain_does_not_overflow(self):
        f = BooleanFactory()
        node = f.fresh_input()
        for i in range(20_000):
            y = f.fresh_input()
            node = f.and_([-node, y]) if i % 2 else f.or_([node, -y])
        cnf, input_vars = f.to_cnf([node])
        assert cnf.num_clauses > 0
        assert len(input_vars) > 0

    def test_gate_requests_counts_presimplification_size(self):
        f = BooleanFactory()
        a, b = f.fresh_input(), f.fresh_input()
        before = f.gate_requests
        f.and_([a, b])
        f.and_([a, b])      # hash-consed: no new gate...
        f.and_([a, TRUE])   # ...and folded: no new gate
        assert f.gate_requests == before + 3
        assert f.num_gates == 1


class TestCnfCompilation:
    def test_root_asserted(self):
        f = BooleanFactory()
        a, b = f.fresh_input(), f.fresh_input()
        root = f.and_([a, -b])
        cnf, inputs = f.to_cnf([root])
        status, model = solve_cnf(cnf)
        assert status is Status.SAT
        assert model[inputs[a]] is True
        assert model[inputs[b]] is False

    def test_false_root_unsat(self):
        f = BooleanFactory()
        a = f.fresh_input()
        root = f.and_([a, -a])
        cnf, _ = f.to_cnf([root])
        assert solve_cnf(cnf)[0] is Status.UNSAT

    def test_true_root_sat(self):
        f = BooleanFactory()
        cnf, _ = f.to_cnf([TRUE])
        assert solve_cnf(cnf)[0] is Status.SAT

    def test_multiple_roots_conjoined(self):
        f = BooleanFactory()
        a, b = f.fresh_input(), f.fresh_input()
        cnf, inputs = f.to_cnf([a, -b])
        status, model = solve_cnf(cnf)
        assert status is Status.SAT
        assert model[inputs[a]] and not model[inputs[b]]


@st.composite
def circuits(draw):
    """Random circuits over up to 4 inputs, described as nested specs."""
    f = BooleanFactory()
    inputs = [f.fresh_input() for _ in range(draw(st.integers(1, 4)))]

    def build(depth):
        kind = draw(st.sampled_from(
            ["input", "and", "or", "not"] if depth > 0 else ["input"]
        ))
        if kind == "input":
            node = draw(st.sampled_from(inputs))
            return node
        if kind == "not":
            return -build(depth - 1)
        children = [build(depth - 1) for _ in range(draw(st.integers(1, 3)))]
        return f.and_(children) if kind == "and" else f.or_(children)

    root = build(draw(st.integers(0, 4)))
    return f, inputs, root


class TestCircuitSemantics:
    @given(circuits())
    @settings(max_examples=80, deadline=None)
    def test_cnf_agrees_with_evaluation(self, circuit):
        """Tseitin CNF must be satisfiable exactly when some input valuation
        makes the root true, and models must evaluate to true."""
        f, inputs, root = circuit
        cnf, input_vars = f.to_cnf([root])
        status, model = solve_cnf(cnf)
        evaluations = [
            f.evaluate(root, dict(zip(inputs, bits)))
            for bits in itertools.product([False, True], repeat=len(inputs))
        ]
        assert (status is Status.SAT) == any(evaluations)
        if model is not None:
            valuation = {
                node: model[var] for node, var in input_vars.items()
            }
            # Inputs simplified out of the circuit can take any value.
            for node in inputs:
                valuation.setdefault(node, False)
            assert f.evaluate(root, valuation) is True
