"""Differential tests: polarity-aware vs bipolar CNF, simplification vs eval.

Two properties pin the compilation pipeline:

* Plaisted-Greenbaum (polarity-aware) and bipolar Tseitin encodings are
  equisatisfiable — not just globally, but per primary-input assignment,
  which is what model enumeration and ``assume_tuple`` rely on.  The
  seeded relational generators from :mod:`repro.campaign.specs` provide
  the problem distribution.
* Construction-time circuit simplification (constant folding, absorption,
  ITE/IFF rewriting) preserves ``evaluate`` semantics against a naive
  reference interpreter over the same operator tree.
"""

import itertools
import random

import pytest

from repro.campaign.specs import ScenarioSpec, materialize
from repro.kodkod.boolcircuit import FALSE, TRUE, BooleanFactory
from repro.kodkod.translate import Translator
from repro.sat.solver import Solver, solve_cnf
from repro.sat.types import Status


def _translate(problem, encoding, symmetry=0):
    return Translator(
        problem.bounds, symmetry=symmetry, cnf_encoding=encoding
    ).translate(problem.formula)


def _primary_projections(translation, limit=512):
    """Every satisfying assignment projected onto the primary variables."""
    solver = Solver()
    if not solver.add_cnf(translation.cnf):
        return set()
    primary = translation.primary_vars()
    seen = set()
    while len(seen) < limit:
        if solver.solve() is not Status.SAT:
            break
        model = solver.model()
        projection = tuple(model[v] for v in primary)
        assert projection not in seen, "blocking clause failed to exclude"
        seen.add(projection)
        if not primary:
            break
        if not solver.add_clause(
            [-v if model[v] else v for v in primary]
        ):
            break
    return seen


class TestEncodingsEquisatisfiable:
    @pytest.mark.parametrize("seed", range(25))
    def test_same_verdict_on_random_relational_problems(self, seed):
        problem = materialize(ScenarioSpec.make("relational", seed))
        pg = _translate(problem, "pg")
        ts = _translate(problem, "tseitin")
        assert pg.cnf.num_clauses <= ts.cnf.num_clauses
        assert pg.stats.num_clauses_saved_by_polarity >= 0
        assert ts.stats.num_clauses_saved_by_polarity == 0
        pg_status, _ = solve_cnf(pg.cnf)
        ts_status, _ = solve_cnf(ts.cnf)
        assert pg_status is ts_status

    @pytest.mark.parametrize("seed", range(8))
    def test_same_primary_projections(self, seed):
        """Stronger than equisatisfiability: both encodings admit exactly
        the same primary-variable assignments, so enumeration through
        blocking clauses yields identical model sets."""
        problem = materialize(
            ScenarioSpec.make("relational", seed, num_atoms=2, depth=2)
        )
        pg = _translate(problem, "pg")
        ts = _translate(problem, "tseitin")
        assert _primary_projections(pg) == _primary_projections(ts)

    @pytest.mark.parametrize("seed", range(8))
    def test_same_verdict_under_symmetry_breaking(self, seed):
        problem = materialize(ScenarioSpec.make("relational", seed))
        pg = _translate(problem, "pg", symmetry=20)
        ts = _translate(problem, "tseitin", symmetry=20)
        assert solve_cnf(pg.cnf)[0] is solve_cnf(ts.cnf)[0]


def _random_circuit(rng, factory, inputs, depth):
    """Build a random circuit plus a parallel naive op-tree reference.

    Returns (node, tree) where ``tree`` is a nested tuple interpreted by
    :func:`_eval_tree` without any simplification.
    """
    if depth == 0 or rng.random() < 0.25:
        node = rng.choice(inputs)
        if rng.random() < 0.5:
            return -node, ("not", ("in", node))
        return node, ("in", node)
    kind = rng.choice(["and", "or", "not", "ite", "iff", "const"])
    if kind == "const":
        node = TRUE if rng.random() < 0.5 else FALSE
        return node, ("const", node == TRUE)
    if kind == "not":
        child, tree = _random_circuit(rng, factory, inputs, depth - 1)
        return factory.not_(child), ("not", tree)
    if kind == "ite":
        cond, cond_t = _random_circuit(rng, factory, inputs, depth - 1)
        then, then_t = _random_circuit(rng, factory, inputs, depth - 1)
        other, other_t = _random_circuit(rng, factory, inputs, depth - 1)
        return factory.ite(cond, then, other), ("ite", cond_t, then_t, other_t)
    if kind == "iff":
        left, left_t = _random_circuit(rng, factory, inputs, depth - 1)
        right, right_t = _random_circuit(rng, factory, inputs, depth - 1)
        return factory.iff(left, right), ("iff", left_t, right_t)
    arity = rng.randint(1, 3)
    pairs = [_random_circuit(rng, factory, inputs, depth - 1)
             for _ in range(arity)]
    nodes = [n for n, _ in pairs]
    trees = tuple(t for _, t in pairs)
    if kind == "and":
        return factory.and_(nodes), ("and",) + trees
    return factory.or_(nodes), ("or",) + trees


def _eval_tree(tree, valuation):
    kind = tree[0]
    if kind == "in":
        return valuation[tree[1]]
    if kind == "const":
        return tree[1]
    if kind == "not":
        return not _eval_tree(tree[1], valuation)
    if kind == "and":
        return all(_eval_tree(t, valuation) for t in tree[1:])
    if kind == "or":
        return any(_eval_tree(t, valuation) for t in tree[1:])
    if kind == "ite":
        return (_eval_tree(tree[2], valuation) if _eval_tree(tree[1], valuation)
                else _eval_tree(tree[3], valuation))
    if kind == "iff":
        return _eval_tree(tree[1], valuation) == _eval_tree(tree[2], valuation)
    raise AssertionError(f"unknown tree kind {kind}")


class TestSimplificationPreservesSemantics:
    @pytest.mark.parametrize("seed", range(40))
    def test_evaluate_matches_naive_interpreter(self, seed):
        rng = random.Random(seed)
        factory = BooleanFactory()
        inputs = [factory.fresh_input() for _ in range(rng.randint(1, 4))]
        node, tree = _random_circuit(rng, factory, inputs, rng.randint(1, 4))
        for bits in itertools.product([False, True], repeat=len(inputs)):
            valuation = dict(zip(inputs, bits))
            if node == TRUE:
                got = True
            elif node == FALSE:
                got = False
            else:
                got = factory.evaluate(node, valuation)
            assert got == _eval_tree(tree, valuation), (tree, bits)

    @pytest.mark.parametrize("seed", range(20))
    def test_both_encodings_match_evaluation_per_assignment(self, seed):
        """Fixing every input via assumptions, each encoding's CNF verdict
        must equal the circuit's evaluation — the per-assignment
        equisatisfiability that enumeration and assume_tuple rely on."""
        rng = random.Random(1000 + seed)
        factory = BooleanFactory()
        inputs = [factory.fresh_input() for _ in range(rng.randint(1, 3))]
        node, tree = _random_circuit(rng, factory, inputs, rng.randint(1, 3))
        if node in (TRUE, FALSE):
            return
        for polarity_aware in (True, False):
            cnf, input_vars = factory.to_cnf([node],
                                             polarity_aware=polarity_aware)
            for bits in itertools.product([False, True], repeat=len(inputs)):
                valuation = dict(zip(inputs, bits))
                expected = factory.evaluate(node, valuation)
                assumptions = [
                    input_vars[i] if valuation[i] else -input_vars[i]
                    for i in inputs if i in input_vars
                ]
                status, _ = solve_cnf(cnf.copy(), assumptions=assumptions)
                # Inputs absent from input_vars were simplified out of the
                # root circuit entirely; with all the remaining inputs
                # pinned, the CNF verdict must match the evaluation unless
                # the dropped inputs can still flip it (they cannot: a
                # node's value never depends on simplified-away inputs).
                assert (status is Status.SAT) == expected, (
                    polarity_aware, tree, bits
                )
