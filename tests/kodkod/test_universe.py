"""Tests for universes and tuple sets."""

import pytest

from repro.kodkod.universe import TupleSet, Universe


class TestUniverse:
    def test_atoms_ordered(self):
        u = Universe(["a", "b", "c"])
        assert u.atoms == ("a", "b", "c")

    def test_duplicate_atoms_rejected(self):
        with pytest.raises(ValueError):
            Universe(["a", "a"])

    def test_empty_universe_rejected(self):
        with pytest.raises(ValueError):
            Universe([])

    def test_index_and_atom_roundtrip(self):
        u = Universe(["a", "b", "c"])
        for i, atom in enumerate(u):
            assert u.index(atom) == i
            assert u.atom(i) == atom

    def test_unknown_atom_raises(self):
        u = Universe(["a"])
        with pytest.raises(KeyError):
            u.index("z")

    def test_contains(self):
        u = Universe(["a", "b"])
        assert "a" in u
        assert "z" not in u

    def test_all_tuples_size(self):
        u = Universe(["a", "b", "c"])
        assert len(u.all_tuples(1)) == 3
        assert len(u.all_tuples(2)) == 9
        assert len(u.all_tuples(3)) == 27

    def test_all_tuples_bad_arity(self):
        with pytest.raises(ValueError):
            Universe(["a"]).all_tuples(0)

    def test_singletons(self):
        u = Universe(["a", "b"])
        singles = u.singletons()
        assert [list(s) for s in singles] == [[("a",)], [("b",)]]


class TestTupleSet:
    def setup_method(self):
        self.u = Universe(["a", "b", "c"])

    def test_arity_validation(self):
        with pytest.raises(ValueError):
            self.u.tuple_set(2, [("a",)])

    def test_atom_validation(self):
        with pytest.raises(KeyError):
            self.u.tuple_set(1, [("z",)])

    def test_union(self):
        s1 = self.u.tuple_set(1, [("a",)])
        s2 = self.u.tuple_set(1, [("b",)])
        assert set(s1.union(s2)) == {("a",), ("b",)}

    def test_intersection(self):
        s1 = self.u.tuple_set(1, [("a",), ("b",)])
        s2 = self.u.tuple_set(1, [("b",), ("c",)])
        assert set(s1.intersection(s2)) == {("b",)}

    def test_difference(self):
        s1 = self.u.tuple_set(1, [("a",), ("b",)])
        s2 = self.u.tuple_set(1, [("b",)])
        assert set(s1.difference(s2)) == {("a",)}

    def test_issubset(self):
        s1 = self.u.tuple_set(1, [("a",)])
        s2 = self.u.tuple_set(1, [("a",), ("b",)])
        assert s1.issubset(s2)
        assert not s2.issubset(s1)

    def test_product(self):
        s1 = self.u.tuple_set(1, [("a",)])
        s2 = self.u.tuple_set(1, [("b",), ("c",)])
        assert set(s1.product(s2)) == {("a", "b"), ("a", "c")}
        assert s1.product(s2).arity == 2

    def test_arity_mismatch_rejected(self):
        s1 = self.u.tuple_set(1, [("a",)])
        s2 = self.u.tuple_set(2, [("a", "b")])
        with pytest.raises(ValueError):
            s1.union(s2)

    def test_cross_universe_rejected(self):
        other = Universe(["a", "b", "c"])
        s1 = self.u.tuple_set(1, [("a",)])
        s2 = other.tuple_set(1, [("a",)])
        with pytest.raises(ValueError):
            s1.union(s2)

    def test_equality_and_hash(self):
        s1 = self.u.tuple_set(1, [("a",)])
        s2 = self.u.tuple_set(1, [("a",)])
        assert s1 == s2
        assert hash(s1) == hash(s2)

    def test_iteration_sorted(self):
        s = self.u.tuple_set(1, [("c",), ("a",), ("b",)])
        assert list(s) == [("a",), ("b",), ("c",)]
