"""Tests for the ``--profile`` plumbing (`repro.analysis.profiling`)
and the flag itself on both sweep CLIs."""

import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.analysis.profiling import run_profiled

SRC = Path(__file__).resolve().parents[2] / "src"


def _run_module(module, args, cwd):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC)
    return subprocess.run(
        [sys.executable, "-m", module, *args],
        cwd=cwd, env=env, capture_output=True, text=True, timeout=300,
    )


class TestRunProfiled:
    def test_returns_result_and_writes_table(self, tmp_path):
        artifact = tmp_path / "prof.txt"

        def work():
            return sum(range(1000))

        assert run_profiled(work, artifact) == sum(range(1000))
        text = artifact.read_text(encoding="utf-8")
        assert "cumulative" in text
        assert "function calls" in text

    def test_top_n_limits_the_table(self, tmp_path):
        artifact = tmp_path / "prof.txt"
        run_profiled(lambda: [sorted(range(50)) for _ in range(5)],
                     artifact, top=3)
        assert "cumulative" in artifact.read_text(encoding="utf-8")

    def test_profile_written_even_when_fn_raises(self, tmp_path):
        artifact = tmp_path / "prof.txt"
        with pytest.raises(RuntimeError, match="boom"):
            run_profiled(lambda: (_ for _ in ()).throw(RuntimeError("boom")),
                         artifact)
        assert artifact.exists()
        assert "cumulative" in artifact.read_text(encoding="utf-8")


class TestProfileFlag:
    def test_fuzz_profile_writes_artifact(self, tmp_path):
        proc = _run_module("repro.fuzz",
                           ["--seed", "0", "--budget", "6", "--no-cache",
                            "--json", "out.json", "--profile", "fuzz.prof"],
                           tmp_path)
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "profile: fuzz.prof" in proc.stdout
        text = (tmp_path / "fuzz.prof").read_text(encoding="utf-8")
        assert "cumulative" in text

    def test_fuzz_profile_collapses_shards_with_a_note(self, tmp_path):
        proc = _run_module("repro.fuzz",
                           ["--seed", "0", "--budget", "6", "--shards", "4",
                            "--no-cache", "--json", "out.json", "--profile"],
                           tmp_path)
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "--shards collapsed to 1" in proc.stderr
        assert (tmp_path / "BENCH_fuzz.profile.txt").exists()

    def test_campaign_profile_writes_artifact(self, tmp_path):
        proc = _run_module("repro.campaign",
                           ["--instances", "8", "--seed", "0", "--no-cache",
                            "--json", "out.json", "--profile", "camp.prof"],
                           tmp_path)
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "profile: camp.prof" in proc.stdout
        text = (tmp_path / "camp.prof").read_text(encoding="utf-8")
        assert "cumulative" in text
        # The profile should surface the actual solve work, not just
        # harness plumbing.
        assert "solver.py" in text
