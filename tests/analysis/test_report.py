"""Tests for report rendering."""

from repro.analysis import render_table


class TestRenderTable:
    def test_basic_alignment(self):
        out = render_table(["a", "bb"], [[1, 2], [333, 4]])
        lines = out.splitlines()
        assert lines[0].startswith("a  ")
        assert "333" in lines[3]

    def test_title_included(self):
        out = render_table(["x"], [[1]], title="My Table")
        assert out.splitlines()[0] == "My Table"

    def test_empty_rows(self):
        out = render_table(["col"], [])
        assert "col" in out

    def test_column_count_consistent(self):
        out = render_table(["a", "b", "c"], [["x", "y", "z"]])
        header, separator, row = out.splitlines()
        assert header.count("|") == 2
        assert row.count("|") == 2
        assert separator.count("+") == 2
