"""Tests for report rendering."""

import json

from repro.analysis import (
    render_service_table,
    render_table,
    write_service_json,
)


class TestRenderTable:
    def test_basic_alignment(self):
        out = render_table(["a", "bb"], [[1, 2], [333, 4]])
        lines = out.splitlines()
        assert lines[0].startswith("a  ")
        assert "333" in lines[3]

    def test_title_included(self):
        out = render_table(["x"], [[1]], title="My Table")
        assert out.splitlines()[0] == "My Table"

    def test_empty_rows(self):
        out = render_table(["col"], [])
        assert "col" in out

    def test_column_count_consistent(self):
        out = render_table(["a", "b", "c"], [["x", "y", "z"]])
        header, separator, row = out.splitlines()
        assert header.count("|") == 2
        assert row.count("|") == 2
        assert separator.count("+") == 2


SNAPSHOT = {
    "schema": 1,
    "queue_depth": 2,
    "jobs": {"pending": 2, "running": 1, "done": 7, "error": 0},
    "recovered": 1,
    "solves": 5,
    "cache_hits": 2,
    "cache_hit_rate": 0.2857,
    "delta_reused": 1,
    "delta_fallback": 0,
    "retries": 1,
    "latency_histogram": {"le_0.032s": 6, "le_0.064s": 1},
    "worker_utilization": 0.41,
}


class TestServiceReport:
    def test_table_flattens_the_snapshot(self):
        out = render_service_table(SNAPSHOT)
        assert out.splitlines()[0] == "service metrics"
        assert "pending=2" in out and "done=7" in out
        assert "le_0.032s=6" in out
        assert "cache_hit_rate" in out

    def test_table_tolerates_a_minimal_snapshot(self):
        out = render_service_table({})
        assert "queue_depth" in out

    def test_artifact_round_trips(self, tmp_path):
        target = tmp_path / "nested" / "BENCH_service_state.json"
        artifact = write_service_json(SNAPSHOT, target)
        assert artifact["benchmark"] == "service"
        on_disk = json.loads(target.read_text(encoding="utf-8"))
        assert on_disk == artifact
        assert on_disk["jobs"]["done"] == 7
