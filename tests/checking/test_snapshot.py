"""Tests for the snapshot/restore protocol and the explorer's memo table."""

import copy

from repro.checking import StateCanonicalizer, explore_message_orders
from repro.mca import (
    AgentNetwork,
    AgentPolicy,
    AsynchronousEngine,
    GeometricUtility,
    SynchronousEngine,
)


def _policies(n, items, shared=False, growth=0.5, release=False, target=2):
    if shared:
        policy = AgentPolicy(
            utility=GeometricUtility(
                {j: 10 + 2 * k for k, j in enumerate(items)}, growth=growth
            ),
            target=target,
            release_outbid=release,
        )
        return {a: policy for a in range(n)}
    return {
        a: AgentPolicy(
            utility=GeometricUtility(
                {j: 10 + 5 * a + 2 * k for k, j in enumerate(items)},
                growth=growth,
            ),
            target=target,
            release_outbid=release,
        )
        for a in range(n)
    }


class TestEngineSnapshot:
    def test_restore_round_trips_logical_state(self):
        items = ["A", "B"]
        engine = SynchronousEngine(
            AgentNetwork.complete(2), items, _policies(2, items)
        )
        before = engine.global_signature()
        snapshot = engine.snapshot()
        engine.run(max_rounds=5)
        assert engine.global_signature() != before
        engine.restore(snapshot)
        assert engine.global_signature() == before
        assert engine.messages_processed == 0

    def test_restore_round_trips_full_agent_state(self):
        items = ["A", "B"]
        engine = SynchronousEngine(
            AgentNetwork.complete(2), items, _policies(2, items)
        )
        engine.run(max_rounds=1)
        agent = engine.agents[0]
        snapshot = engine.snapshot()
        saved = (
            dict(agent.beliefs), list(agent.bundle), agent.clock,
            list(agent.outbid_log), agent._resolver.snapshot_freshness(),
        )
        engine.run(max_rounds=5)
        engine.restore(snapshot)
        assert dict(agent.beliefs) == saved[0]
        assert list(agent.bundle) == saved[1]
        assert agent.clock == saved[2]
        assert list(agent.outbid_log) == saved[3]
        assert agent._resolver.snapshot_freshness() == saved[4]

    def test_snapshot_is_reusable_across_restores(self):
        items = ["A"]
        engine = SynchronousEngine(
            AgentNetwork.complete(2), items, _policies(2, items, target=1)
        )
        snapshot = engine.snapshot()
        reference = engine.global_signature()
        for _ in range(3):
            engine.run(max_rounds=4)
            engine.restore(snapshot)
            assert engine.global_signature() == reference

    def test_restored_run_matches_fresh_run(self):
        items = ["A", "B"]
        policies = _policies(3, items)
        network = AgentNetwork.complete(3)
        engine = SynchronousEngine(network, items, policies)
        snapshot = engine.snapshot()
        first = engine.run(max_rounds=20)
        engine.restore(snapshot)
        second = engine.run(max_rounds=20)
        fresh = SynchronousEngine(network, items, policies).run(max_rounds=20)
        assert first.allocation == second.allocation == fresh.allocation
        assert first.rounds == second.rounds == fresh.rounds

    def test_asynchronous_engine_snapshot_includes_buffer(self):
        items = ["A"]
        engine = AsynchronousEngine(
            AgentNetwork.complete(2), items, _policies(2, items, target=1)
        )
        for agent_id in engine.network.agents():
            if engine.agents[agent_id].bid_phase():
                engine._broadcast(agent_id)
        assert engine.buffer
        snapshot = engine.snapshot()
        buffered = list(engine.buffer)
        engine.run(max_messages=100)
        assert not engine.buffer
        engine.restore(snapshot)
        assert engine.buffer == buffered


class TestExplorerWithoutDeepcopy:
    def test_exploration_never_deepcopies(self, monkeypatch):
        def poisoned(*_args, **_kwargs):
            raise AssertionError("deepcopy on the explorer hot path")

        monkeypatch.setattr(copy, "deepcopy", poisoned)
        items = ["A", "B"]
        result = explore_message_orders(
            AgentNetwork.complete(2), items, _policies(2, items)
        )
        assert result.all_converged

    def test_memoized_matches_unmemoized_on_convergence(self):
        # Star and line topologies exercise the automorphism filter:
        # hub/endpoint agents must not be renamed into leaf/middle roles
        # even when every agent shares one policy object.
        items = ["A", "B"]
        networks = [
            AgentNetwork.complete(3),
            AgentNetwork.star(3),
            AgentNetwork.line(3),
        ]
        for shared in (False, True):
            for network in networks:
                policies = _policies(3, items, shared=shared)
                memo = explore_message_orders(
                    network, items, policies, max_rounds=8, memoize=True,
                    max_paths=100_000,
                )
                plain = explore_message_orders(
                    network, items, policies, max_rounds=8, memoize=False,
                    max_paths=100_000,
                )
                assert memo.all_converged == plain.all_converged
                assert (memo.max_rounds_to_converge
                        == plain.max_rounds_to_converge)
                assert memo.paths_explored == plain.paths_explored

    def test_memoized_matches_unmemoized_on_divergence(self):
        items = ["A", "B"]
        policies = _policies(2, items, shared=False, growth=2.0, release=True)
        network = AgentNetwork.complete(2)
        memo = explore_message_orders(
            network, items, policies, max_rounds=8, memoize=True
        )
        plain = explore_message_orders(
            network, items, policies, max_rounds=8, memoize=False
        )
        assert memo.all_converged == plain.all_converged
        if not memo.all_converged:
            assert memo.counterexample is not None
            assert plain.counterexample is not None

    def test_memo_table_hits_on_interchangeable_agents(self):
        items = ["A", "B", "C"]
        policies = _policies(3, items, shared=True)
        result = explore_message_orders(
            AgentNetwork.complete(3), items, policies,
            max_rounds=10, max_paths=100_000,
        )
        assert result.all_converged
        assert result.memo_hits > 0
        assert result.states_memoized > 0


class TestStateCanonicalizer:
    def test_identity_without_shared_policies(self):
        items = ["A"]
        policies = _policies(2, items)
        canonicalizer = StateCanonicalizer(AgentNetwork.complete(2), policies)
        assert canonicalizer.groups == []

    def test_groups_shared_policy_agents(self):
        items = ["A"]
        policies = _policies(3, items, shared=True)
        canonicalizer = StateCanonicalizer(AgentNetwork.complete(3), policies)
        assert canonicalizer.groups == [[0, 1, 2]]

    def test_non_automorphic_renamings_rejected(self):
        # Star hub and leaves share a policy, but swapping the hub with
        # a leaf changes message connectivity: only leaf-leaf renamings
        # survive the automorphism filter.
        items = ["A"]
        policies = _policies(3, items, shared=True)
        star = StateCanonicalizer(AgentNetwork.star(3), policies)
        hub_moves = [
            m for m in star._relabelings if m.get(0, 0) != 0
        ]
        assert hub_moves == []
        assert len(star._relabelings) == 2  # identity + swap of leaves 1,2

    def test_renamed_states_share_a_key(self):
        items = ["A"]
        policies = _policies(2, items, shared=True)
        canonicalizer = StateCanonicalizer(AgentNetwork.complete(2), policies)
        # Agent 0 winning looks like agent 1 winning with names swapped.
        state_a = (
            ((("A", 0, 10.0),), ("A",)),
            ((("A", 0, 10.0),), ()),
        )
        state_b = (
            ((("A", 1, 10.0),), ()),
            ((("A", 1, 10.0),), ("A",)),
        )
        assert canonicalizer.key(state_a) == canonicalizer.key(state_b)

    def test_distinct_states_keep_distinct_keys(self):
        items = ["A"]
        policies = _policies(2, items, shared=True)
        canonicalizer = StateCanonicalizer(AgentNetwork.complete(2), policies)
        winning = (
            ((("A", 0, 10.0),), ("A",)),
            ((("A", 0, 10.0),), ()),
        )
        unassigned = (
            ((("A", -1, 0.0),), ()),
            ((("A", -1, 0.0),), ()),
        )
        assert canonicalizer.key(winning) != canonicalizer.key(unassigned)
