"""Tests for the explicit-state explorer."""

from repro.checking import explore_message_orders
from repro.mca import AgentNetwork, AgentPolicy, GeometricUtility, RebidStrategy


def policies_for(n, items, growth=0.5, release=False, target=2):
    return {
        a: AgentPolicy(
            utility=GeometricUtility(
                {j: 10 + 5 * a + 2 * k for k, j in enumerate(items)},
                growth=growth,
            ),
            target=target,
            release_outbid=release,
        )
        for a in range(n)
    }


class TestHonestExploration:
    def test_all_orders_converge_two_agents(self):
        items = ["A", "B"]
        result = explore_message_orders(
            AgentNetwork.complete(2), items, policies_for(2, items)
        )
        assert result.all_converged
        assert result.paths_explored > 0
        assert result.counterexample is None

    def test_all_orders_converge_line_of_three(self):
        items = ["A"]
        result = explore_message_orders(
            AgentNetwork.line(3), items, policies_for(3, items, target=1)
        )
        assert result.all_converged

    def test_round_count_bounded(self):
        items = ["A", "B"]
        network = AgentNetwork.complete(2)
        result = explore_message_orders(network, items,
                                        policies_for(2, items))
        from repro.mca import message_bound

        assert result.max_rounds_to_converge <= message_bound(network, items) + 1


class TestDivergentExploration:
    def test_oscillation_found_for_nonsub_release(self):
        from repro.mca.scenarios import figure2_engine

        engine = figure2_engine(submodular=False, release_outbid=True)
        items = engine.items
        policies = {a: engine.agents[a].policy for a in engine.agents}
        result = explore_message_orders(
            AgentNetwork.complete(2), items, policies, max_rounds=10
        )
        assert not result.all_converged
        assert result.counterexample is not None

    def test_rebid_attack_found(self):
        items = ["A"]
        policies = {
            0: AgentPolicy(utility=GeometricUtility({"A": 10}, 0.5), target=1),
            1: AgentPolicy(utility=GeometricUtility({"A": 1}, 0.5), target=1,
                           rebid=RebidStrategy.FLIPFLOP),
        }
        result = explore_message_orders(
            AgentNetwork.complete(2), items, policies, max_rounds=10
        )
        assert not result.all_converged


class TestCrossValidation:
    def test_explorer_agrees_with_sat_model_on_policy_verdicts(self):
        """The two checkers (explicit-state and SAT-based) must agree on
        the Result-1 verdict for each policy combination."""
        from repro.model import PolicyCombination, check_combination
        from repro.mca.scenarios import figure2_engine

        for submodular, release in [(True, False), (True, True),
                                    (False, False), (False, True)]:
            engine = figure2_engine(submodular=submodular,
                                    release_outbid=release)
            policies = {a: engine.agents[a].policy for a in engine.agents}
            dynamic = explore_message_orders(
                AgentNetwork.complete(2), engine.items, policies,
                max_rounds=10,
            )
            sat = check_combination(
                PolicyCombination(submodular, release),
                num_pnodes=2, num_vnodes=2, max_value=6,
            )
            assert dynamic.all_converged == sat.converges, (
                submodular, release
            )
