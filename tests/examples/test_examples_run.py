"""Smoke tests: every example script must run end to end.

The examples are the repo's executable documentation and were previously
never exercised by CI; each one is run as a subprocess (the way a reader
would run it) and must exit 0 without writing artifacts into the repo.
"""

import os
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]
EXAMPLES_DIR = REPO_ROOT / "examples"
EXAMPLE_SCRIPTS = sorted(EXAMPLES_DIR.glob("*.py"))


def test_examples_discovered():
    """Guard against the glob silently matching nothing after a move."""
    names = {path.name for path in EXAMPLE_SCRIPTS}
    assert "quickstart.py" in names
    assert "campaign_sweep.py" in names


@pytest.mark.parametrize("script", EXAMPLE_SCRIPTS,
                         ids=lambda p: p.stem)
def test_example_runs_clean(script, tmp_path):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(REPO_ROOT / "src")]
        + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
    )
    # Keep the campaign example lightweight in CI; harmless elsewhere.
    env.setdefault("CAMPAIGN_SWEEP_INSTANCES", "24")
    env.setdefault("CAMPAIGN_SWEEP_SHARDS", "2")
    completed = subprocess.run(
        [sys.executable, str(script)],
        cwd=tmp_path,  # artifacts (e.g. BENCH_campaign.json) land here
        env=env,
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert completed.returncode == 0, (
        f"{script.name} failed\n"
        f"--- stdout ---\n{completed.stdout}\n"
        f"--- stderr ---\n{completed.stderr}"
    )
    assert completed.stdout.strip(), f"{script.name} printed nothing"
