"""Tests for the static MCA models in both encodings."""

import pytest

from repro.kodkod import ast
from repro.kodkod.engine import solve, translate
from repro.model import build_naive_static, build_optim_static, compare_encodings


class TestNaiveStatic:
    @pytest.fixture(scope="class")
    def compiled(self):
        model = build_naive_static(max_int=7)
        universe, bounds, facts = model.compile(2, 2)
        return model, universe, bounds, facts

    def test_consistent(self, compiled):
        _, _, bounds, facts = compiled
        assert solve(facts, bounds).satisfiable

    def test_unique_id_holds(self, compiled):
        model, _, bounds, facts = compiled
        goal = ast.And([facts, ast.Not(model.unique_id_assertion())])
        assert not solve(goal, bounds).satisfiable

    def test_capacity_assertion_holds(self, compiled):
        model, _, bounds, facts = compiled
        goal = ast.And([facts, ast.Not(model.capacity_assertion())])
        assert not solve(goal, bounds).satisfiable

    def test_conflicting_bids_possible(self, compiled):
        """The conflict-free-init assertion must FAIL: bidding conflicts
        are what the agreement phase exists to resolve."""
        model, _, bounds, facts = compiled
        goal = ast.And([facts, ast.Not(model.conflict_free_init_assertion())])
        assert solve(goal, bounds).satisfiable

    def test_connections_symmetric_in_instances(self, compiled):
        model, _, bounds, facts = compiled
        sol = solve(facts, bounds)
        pairs = set(sol.instance.value_of(model.pconnections))
        assert all((b, a) in pairs for a, b in pairs)

    def test_capacity_respected_in_instances(self, compiled):
        model, universe, bounds, facts = compiled
        sol = solve(facts, bounds)
        inst = sol.instance
        bids = list(inst.value_of(model.init_bids))
        caps = dict(inst.value_of(model.pcp))
        for pnode_atom, _vnode_atom, bid_atom in bids:
            bid_value = int(bid_atom.split("$")[1])
            cap_value = int(caps[pnode_atom].split("$")[1])
            assert bid_value <= cap_value


class TestOptimStatic:
    @pytest.fixture(scope="class")
    def compiled(self):
        model = build_optim_static(max_value=3)
        universe, bounds, facts = model.compile(2, 2)
        return model, universe, bounds, facts

    def test_consistent(self, compiled):
        _, _, bounds, facts = compiled
        assert solve(facts, bounds).satisfiable

    def test_unique_id_holds(self, compiled):
        model, _, bounds, facts = compiled
        goal = ast.And([facts, ast.Not(model.unique_id_assertion())])
        assert not solve(goal, bounds).satisfiable

    def test_capacity_assertion_holds(self, compiled):
        model, _, bounds, facts = compiled
        goal = ast.And([facts, ast.Not(model.capacity_assertion())])
        assert not solve(goal, bounds).satisfiable

    def test_conflicting_bids_possible(self, compiled):
        model, _, bounds, facts = compiled
        goal = ast.And([facts, ast.Not(model.conflict_free_init_assertion())])
        assert solve(goal, bounds).satisfiable

    def test_triples_functional_in_instances(self, compiled):
        model, _, bounds, facts = compiled
        sol = solve(facts, bounds)
        inst = sol.instance
        owner_of = {}
        for pnode_atom, triple_atom in inst.value_of(model.init_triples):
            assert owner_of.setdefault(triple_atom, pnode_atom) == pnode_atom


class TestEncodingComparison:
    def test_optimized_is_smaller(self):
        """Section IV's headline: the optimized abstraction shrinks the SAT
        translation (paper: 259K -> 190K clauses at scope (3,2))."""
        cmp = compare_encodings(num_pnodes=3, num_vnodes=2)
        assert cmp.optim_clauses < cmp.naive_clauses
        assert cmp.optim_vars < cmp.naive_vars
        assert cmp.clause_ratio < 1.0

    def test_gap_grows_with_scope(self):
        small = compare_encodings(num_pnodes=2, num_vnodes=2)
        large = compare_encodings(num_pnodes=3, num_vnodes=3)
        assert (large.naive_clauses - large.optim_clauses) > (
            small.naive_clauses - small.optim_clauses
        )

    def test_both_encodings_equisatisfiable(self):
        """Both encodings admit instances at every tested scope."""
        for p, v in [(2, 2), (3, 2)]:
            naive = build_naive_static(max_int=7)
            _, nb, nf = naive.compile(p, v)
            optim = build_optim_static(max_value=3)
            _, ob, of = optim.compile(p, v)
            assert solve(nf, nb).satisfiable == solve(of, ob).satisfiable
