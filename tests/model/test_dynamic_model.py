"""Tests for the dynamic MCA model: Results 1 and 2, push-button."""

import pytest

from repro.model import (
    ALL_POLICY_COMBINATIONS,
    PolicyCombination,
    build_dynamic,
    check_combination,
    model_for,
    policy_matrix,
)


class TestHonestDynamics:
    def test_model_is_consistent(self):
        model = build_dynamic(num_pnodes=2, num_vnodes=2, max_value=4)
        assert model.run_consistency().satisfiable

    def test_honest_consensus_holds(self):
        model = build_dynamic(num_pnodes=2, num_vnodes=2, max_value=4)
        assert not model.check_consensus().satisfiable

    def test_honest_consensus_holds_one_item(self):
        model = build_dynamic(num_pnodes=2, num_vnodes=1, max_value=3)
        assert not model.check_consensus().satisfiable

    def test_honest_line_of_three(self):
        model = build_dynamic(num_pnodes=3, num_vnodes=1, max_value=3,
                              edges=[(0, 1), (1, 2)])
        assert not model.check_consensus().satisfiable

    def test_default_state_count_is_paper_bound(self):
        model = build_dynamic(num_pnodes=2, num_vnodes=2, max_value=3)
        # 2-clique: D = 1; val = D * |vnode| = 2; states = val + 1.
        assert model.num_states == 3

    def test_disconnected_graph_rejected(self):
        with pytest.raises(ValueError):
            build_dynamic(num_pnodes=3, num_vnodes=1, edges=[(0, 1)])


class TestResult2RebidAttack:
    def test_attacker_breaks_consensus(self):
        model = build_dynamic(num_pnodes=2, num_vnodes=2, max_value=4,
                              rebid_attackers={1})
        assert model.check_consensus().satisfiable

    def test_counterexample_shows_persistent_disagreement(self):
        model = build_dynamic(num_pnodes=2, num_vnodes=1, max_value=3,
                              rebid_attackers={1})
        solution = model.check_consensus()
        assert solution.satisfiable
        assert solution.instance is not None


class TestResult1ReleaseNonSubmodular:
    def test_release_nonsub_breaks_consensus(self):
        model = build_dynamic(num_pnodes=2, num_vnodes=2, max_value=6,
                              release_nonsub={0, 1})
        assert model.check_consensus().satisfiable

    def test_single_release_agent_suffices(self):
        model = build_dynamic(num_pnodes=2, num_vnodes=2, max_value=6,
                              release_nonsub={0})
        assert model.check_consensus().satisfiable


class TestPolicyMatrix:
    @pytest.fixture(scope="class")
    def verdicts(self):
        return policy_matrix(num_pnodes=2, num_vnodes=2, max_value=6)

    def test_exactly_one_combination_fails(self, verdicts):
        """Result 1: MCA always reaches consensus *except* when the utility
        is non-sub-modular and outbid items are released."""
        failing = [v.combination.label for v in verdicts if not v.converges]
        assert failing == ["nonsub+release"]

    def test_all_other_combinations_converge(self, verdicts):
        for verdict in verdicts:
            expected = not (
                not verdict.combination.submodular
                and verdict.combination.release_outbid
            )
            assert verdict.converges == expected, verdict.combination.label

    def test_matrix_covers_grid(self, verdicts):
        assert len(verdicts) == len(ALL_POLICY_COMBINATIONS) == 4

    def test_rebid_attack_fails_even_submodular(self):
        combo = PolicyCombination(submodular=True, release_outbid=False,
                                  rebid_allowed=True)
        verdict = check_combination(combo, num_pnodes=2, num_vnodes=1,
                                    max_value=3)
        assert verdict.counterexample_found

    def test_model_for_gates_release(self):
        honest = model_for(PolicyCombination(True, False))
        deviant = model_for(PolicyCombination(False, True))
        assert not honest.check_consensus().satisfiable
        assert deviant.check_consensus().satisfiable
