"""Public-API snapshot: accidental surface changes must fail loudly.

The exported name sets and the signatures of the façade entry points are
pinned here.  Changing them is allowed — but it must be a deliberate,
reviewed edit to this file, not a drive-by.
"""

import inspect
from pathlib import Path

import repro
from repro import api

EXPECTED_REPRO_ALL = [
    "__version__",
    "api",
    "Backend",
    "DeltaSession",
    "FormulaProblem",
    "ModuleProblem",
    "Options",
    "Problem",
    "ProblemDelta",
    "ProtocolProblem",
    "Result",
    "Verdict",
    "available_backends",
    "check",
    "diff_problems",
    "enumerate",
    "problem_from_spec",
    "register_backend",
    "run_protocol",
    "solve",
    "solve_delta",
    "solve_many",
]

EXPECTED_API_ALL = [
    "BATCH_SCHEMA",
    "Backend",
    "DEFAULT_TASK_TIMEOUT",
    "DeltaSession",
    "ExplorerBackend",
    "FormulaProblem",
    "KodkodBackend",
    "ModuleProblem",
    "Options",
    "Problem",
    "ProblemDelta",
    "ProtocolProblem",
    "Result",
    "Verdict",
    "available_backends",
    "backend_for",
    "batch_cache_key",
    "check",
    "describe_verdict",
    "diff_problems",
    "enumerate",
    "get_backend",
    "instance_payload",
    "problem_fingerprint",
    "problem_from_spec",
    "problem_kind",
    "register_backend",
    "result_from_json",
    "result_to_json",
    "run_protocol",
    "solve",
    "solve_delta",
    "solve_many",
]

EXPECTED_SIGNATURES = {
    "solve": "(problem, bounds=None, *, options: "
             "'Options | None' = None, **overrides) -> 'Result'",
    "check": "(module, assertion=None, scope: 'Scope | None' = None, *, "
             "options: 'Options | None' = None, **overrides) -> 'Result'",
    "enumerate": "(problem, bounds=None, *, limit: 'int | None' = None, "
                 "options: 'Options | None' = None, **overrides) "
                 "-> 'Result'",
    "run_protocol": "(network, items: 'Iterable' = None, policies: "
                    "'Mapping | None' = None, *, options: "
                    "'Options | None' = None, **overrides) -> 'Result'",
    "solve_many": "(problems: 'Sequence[Problem]', options: "
                  "'Options | None' = None, *, workers: 'int | None' = None, "
                  "cache_dir: 'str | Path | None' = None, task_timeout: "
                  "'float | None' = None, progress: "
                  "'Callable[[int, Result], None] | None' = None, "
                  "**overrides) -> 'list[Result]'",
    "solve_delta": "(prev, new_problem, *, options: "
                   "'Options | None' = None, **overrides) -> 'Result'",
}

EXPECTED_OPTIONS_FIELDS = [
    "solver",
    "symmetry",
    "max_instances",
    "max_rounds",
    "max_paths",
    "memoize",
    "timeout",
    "workers",
    "cache_dir",
]

EXPECTED_RESULT_FIELDS = [
    "verdict",
    "instances",
    "trace",
    "stats",
    "solver_stats",
    "seconds",
    "backend",
    "detail",
    "error",
]

EXPECTED_VERDICTS = ["sat", "unsat", "holds", "counterexample", "error"]


class TestSurfaceSnapshot:
    def test_repro_all_is_pinned(self):
        assert sorted(repro.__all__) == sorted(EXPECTED_REPRO_ALL)

    def test_repro_api_all_is_pinned(self):
        assert sorted(api.__all__) == sorted(EXPECTED_API_ALL)

    def test_every_exported_name_resolves(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None
        for name in api.__all__:
            assert getattr(api, name) is not None

    def test_repro_reexports_match_api(self):
        for name in set(repro.__all__) & set(api.__all__):
            assert getattr(repro, name) is getattr(api, name), name

    def test_facade_signatures_are_pinned(self):
        for name, expected in EXPECTED_SIGNATURES.items():
            actual = str(inspect.signature(getattr(api, name)))
            assert actual == expected, (
                f"signature of repro.api.{name} changed:\n"
                f"  expected {expected}\n  actual   {actual}\n"
                f"update EXPECTED_SIGNATURES deliberately if intended"
            )

    def test_options_fields_are_pinned(self):
        import dataclasses

        names = [f.name for f in dataclasses.fields(api.Options)]
        assert names == EXPECTED_OPTIONS_FIELDS

    def test_result_fields_are_pinned(self):
        import dataclasses

        names = [f.name for f in dataclasses.fields(api.Result)]
        assert names == EXPECTED_RESULT_FIELDS

    def test_verdict_values_are_pinned(self):
        assert [v.value for v in api.Verdict] == EXPECTED_VERDICTS


class TestTypingMarker:
    def test_py_typed_ships_with_the_package(self):
        marker = Path(repro.__file__).parent / "py.typed"
        assert marker.is_file(), (
            "src/repro/py.typed is missing: type checkers would ignore "
            "the package's annotations (PEP 561)"
        )

    def test_pyproject_packages_the_marker(self):
        root = Path(repro.__file__).resolve().parents[2]
        pyproject = (root / "pyproject.toml").read_text(encoding="utf-8")
        assert "py.typed" in pyproject, (
            "pyproject.toml must declare the py.typed marker as package "
            "data or it is dropped from wheels"
        )
