"""Façade semantics: problems, verdicts, backends, rendering."""

import pytest

from repro import api
from repro.alloylite import Module, Scope
from repro.api import (
    FormulaProblem,
    ModuleProblem,
    Options,
    ProtocolProblem,
    Verdict,
)
from repro.kodkod import Bounds, Universe, ast
from repro.mca import AgentNetwork, AgentPolicy, GeometricUtility


@pytest.fixture
def unary_problem():
    universe = Universe(["a", "b", "c"])
    r = ast.Relation("r", 1)
    bounds = Bounds(universe)
    bounds.bound(r, universe.empty(1), universe.all_tuples(1))
    return r, bounds


@pytest.fixture
def small_module():
    m = Module()
    a = m.sig("A")
    b = m.sig("B")
    m.fact(ast.Some(a.expr))
    return m, a, b


@pytest.fixture
def two_agent_protocol():
    items = ["x", "y"]
    policies = {
        0: AgentPolicy(utility=GeometricUtility({"x": 10, "y": 4}, 0.5),
                       target=2),
        1: AgentPolicy(utility=GeometricUtility({"x": 5, "y": 8}, 0.5),
                       target=2),
    }
    return ProtocolProblem(AgentNetwork.complete(2), tuple(items), policies)


class TestSolve:
    def test_sat_formula(self, unary_problem):
        r, bounds = unary_problem
        result = api.solve(ast.Some(r), bounds)
        assert result.verdict is Verdict.SAT
        assert result.satisfiable
        assert result.instance is not None
        assert result.backend == "kodkod"
        assert result.stats.num_clauses >= 0
        assert result.seconds >= 0.0

    def test_unsat_formula(self, unary_problem):
        r, bounds = unary_problem
        result = api.solve(ast.And([ast.Some(r), ast.No(r)]), bounds)
        assert result.verdict is Verdict.UNSAT
        assert not result.satisfiable
        assert result.instance is None
        assert result.describe() == "no instance found"

    def test_problem_object(self, unary_problem):
        r, bounds = unary_problem
        result = api.solve(FormulaProblem(ast.Some(r), bounds))
        assert result.verdict is Verdict.SAT

    def test_formula_without_bounds_rejected(self, unary_problem):
        r, _ = unary_problem
        with pytest.raises(ValueError, match="requires bounds"):
            api.solve(ast.Some(r))

    def test_problem_with_bounds_rejected(self, unary_problem):
        r, bounds = unary_problem
        with pytest.raises(ValueError, match="bounds must be omitted"):
            api.solve(FormulaProblem(ast.Some(r), bounds), bounds)

    def test_unknown_problem_type_rejected(self):
        with pytest.raises(ValueError, match="cannot interpret"):
            api.solve(42)


class TestCheck:
    def test_holding_assertion(self, small_module):
        m, a, _ = small_module
        result = api.check(m, ast.Some(a.expr),
                           Scope(per_sig={"A": 2, "B": 1}))
        assert result.verdict is Verdict.HOLDS
        assert result.holds
        assert result.counterexample is None
        assert "holds" in result.describe()

    def test_refuted_assertion(self, small_module):
        # Sig scopes are exact, so "no B" is refuted by every instance.
        m, _, b = small_module
        result = api.check(m, ast.No(b.expr),
                           Scope(per_sig={"A": 1, "B": 1}))
        assert result.verdict is Verdict.COUNTEREXAMPLE
        assert not result.holds
        assert result.satisfiable  # the counterexample is a model
        assert result.counterexample is result.instance
        assert "counterexample" in result.describe()

    def test_missing_assertion_rejected(self, small_module):
        m, _, _ = small_module
        with pytest.raises(ValueError, match="requires an assertion"):
            api.check(m)

    def test_module_problem_command_check(self, small_module):
        m, _, b = small_module
        problem = ModuleProblem(m, "check", ast.No(b.expr),
                                Scope(per_sig={"A": 1, "B": 1}))
        assert api.check(problem).verdict is Verdict.COUNTEREXAMPLE
        assert api.solve(problem).verdict is Verdict.COUNTEREXAMPLE

    def test_check_problem_requires_goal(self, small_module):
        m, _, _ = small_module
        with pytest.raises(ValueError, match="requires a goal"):
            ModuleProblem(m, "check")

    def test_bad_command_rejected(self, small_module):
        m, _, _ = small_module
        with pytest.raises(ValueError, match="'run' or 'check'"):
            ModuleProblem(m, "verify")

    def test_check_formula_problem_is_validity(self, unary_problem):
        r, bounds = unary_problem
        # "some r or no r" is valid within any bounds; "some r" is not.
        tautology = ast.Or([ast.Some(r), ast.No(r)])
        assert api.check(FormulaProblem(tautology, bounds)).verdict \
            is Verdict.HOLDS
        refuted = api.check(FormulaProblem(ast.Some(r), bounds))
        assert refuted.verdict is Verdict.COUNTEREXAMPLE
        assert refuted.instance is not None  # a model of "no r"

    def test_check_rejects_run_command_problem(self, small_module):
        m, _, _ = small_module
        with pytest.raises(ValueError, match="command='check'"):
            api.check(ModuleProblem(m, "run"))

    def test_module_scope_argument_must_be_scope(self, small_module,
                                                 unary_problem):
        m, _, _ = small_module
        _, bounds = unary_problem
        with pytest.raises(ValueError, match="must be a Scope"):
            api.solve(m, bounds)


class TestEnumerate:
    def test_enumerates_all_models(self, unary_problem):
        r, bounds = unary_problem
        result = api.enumerate(ast.Some(r), bounds)
        # Nonempty subsets of a 3-atom universe: 2^3 - 1 models.
        assert result.verdict is Verdict.SAT
        assert len(result.instances) == 7
        assert result.detail["num_instances"] == 7
        assert not result.detail["truncated"]

    def test_limit(self, unary_problem):
        r, bounds = unary_problem
        result = api.enumerate(ast.Some(r), bounds, limit=3)
        assert len(result.instances) == 3
        assert result.detail["truncated"]

    def test_empty_space_is_unsat(self, unary_problem):
        r, bounds = unary_problem
        result = api.enumerate(ast.And([ast.Some(r), ast.No(r)]), bounds)
        assert result.verdict is Verdict.UNSAT
        assert result.instances == []

    def test_symmetry_prunes_isomorphic_models(self, unary_problem):
        r, bounds = unary_problem
        plain = api.enumerate(ast.Some(r), bounds)
        broken = api.enumerate(ast.Some(r), bounds, symmetry=20)
        assert 0 < len(broken.instances) < len(plain.instances)


class TestRunProtocol:
    def test_converging_protocol_holds(self, two_agent_protocol):
        result = api.run_protocol(two_agent_protocol, max_rounds=10)
        assert result.verdict is Verdict.HOLDS
        assert result.holds
        assert result.trace is None
        assert result.backend == "explorer"
        assert result.detail["paths_explored"] >= 1

    def test_positional_spelling(self, two_agent_protocol):
        p = two_agent_protocol
        result = api.run_protocol(p.network, p.items, p.policies,
                                  max_rounds=10)
        assert result.verdict is Verdict.HOLDS

    def test_oscillation_is_counterexample_with_trace(self):
        # Figure 2's broken cell: non-sub-modular utilities + release
        # policy oscillate under every schedule.
        from repro.mca.scenarios import figure2_engine

        engine = figure2_engine(submodular=False, release_outbid=True)
        policies = {a: engine.agents[a].policy for a in engine.agents}
        result = api.run_protocol(AgentNetwork.complete(2), engine.items,
                                  policies, max_rounds=10)
        assert result.verdict is Verdict.COUNTEREXAMPLE
        assert result.trace is not None
        assert result.counterexample == result.trace
        assert "counterexample" in result.describe()

    def test_missing_policy_rejected(self):
        with pytest.raises(ValueError, match="missing a policy"):
            ProtocolProblem(AgentNetwork.complete(3), ("x",),
                            {0: AgentPolicy(
                                utility=GeometricUtility({"x": 1}, 0.5),
                                target=1)})

    def test_items_policies_required(self, two_agent_protocol):
        with pytest.raises(ValueError, match="requires items and policies"):
            api.run_protocol(two_agent_protocol.network)


class TestBackendRegistry:
    def test_available_backends(self):
        names = api.available_backends()
        assert "kodkod" in names and "explorer" in names

    def test_unknown_backend_error_lists_known(self, unary_problem):
        r, bounds = unary_problem
        with pytest.raises(ValueError, match=r"unknown backend 'z3'.*kodkod"):
            api.solve(ast.Some(r), bounds, solver="z3")

    def test_backend_problem_mismatch(self, two_agent_protocol):
        with pytest.raises(ValueError, match="does not support"):
            api.run_protocol(two_agent_protocol, solver="kodkod")

    def test_explorer_cannot_enumerate(self, two_agent_protocol):
        with pytest.raises(ValueError, match="cannot[\\s\\S]*enumerate"):
            api.enumerate(two_agent_protocol)

    def test_register_backend_requires_name(self):
        class Nameless:
            def supports(self, problem):
                return False

        with pytest.raises(ValueError, match="name"):
            api.register_backend(Nameless())

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            api.register_backend(api.KodkodBackend())

    def test_custom_backend_plugs_in(self, unary_problem):
        from repro.api import Result
        from repro.api.backends import _REGISTRY

        class EchoBackend:
            name = "echo-test"

            def supports(self, problem):
                return isinstance(problem, FormulaProblem)

            def solve(self, problem, options):
                return Result(verdict=Verdict.UNSAT, backend=self.name)

            def enumerate(self, problem, options):
                return Result(verdict=Verdict.UNSAT, backend=self.name)

        api.register_backend(EchoBackend())
        try:
            r, bounds = unary_problem
            result = api.solve(ast.Some(r), bounds, solver="echo-test")
            assert result.backend == "echo-test"
            assert result.verdict is Verdict.UNSAT
            # Automatic selection still prefers the first registered
            # backend that supports the problem (kodkod).
            assert api.solve(ast.Some(r), bounds).backend == "kodkod"
        finally:
            _REGISTRY.pop("echo-test", None)


class TestResultRendering:
    def test_error_result_refuses_verdict_properties(self):
        from repro.api import Result

        result = Result(verdict=Verdict.ERROR, error="boom")
        with pytest.raises(ValueError, match="did not complete"):
            result.satisfiable
        with pytest.raises(ValueError, match="did not complete"):
            result.holds
        assert result.describe() == "error: boom"

    def test_multi_instance_rendering(self, unary_problem):
        r, bounds = unary_problem
        rendered = api.enumerate(ast.Some(r), bounds, limit=2).describe()
        assert "--- instance 0 ---" in rendered
        assert "--- instance 1 ---" in rendered

    def test_options_object_accepted(self, unary_problem):
        r, bounds = unary_problem
        result = api.enumerate(ast.Some(r), bounds,
                               options=Options(max_instances=2))
        assert len(result.instances) == 2
