"""The PR 3/4 deprecation shims: warn exactly once, answer identically.

Each legacy entry point (``kodkod.engine.solve``/``iter_solutions``/
``count_solutions``, ``alloylite.run``/``check``/``iter_instances``,
``checking.explore_message_orders``) must emit exactly one
``DeprecationWarning`` per call and return results identical to the
façade (or renamed) path it forwards to.
"""

import warnings

import pytest

from repro import api
from repro.alloylite import commands as alloylite
from repro.alloylite.module import Module, Scope
from repro.api.problems import ModuleProblem
from repro.checking import explore, explore_message_orders
from repro.kodkod import ast, engine
from repro.kodkod.bounds import Bounds
from repro.kodkod.universe import Universe
from repro.mca.network import AgentNetwork
from repro.mca.policies import submodular_policy


def _relational_problem():
    universe = Universe(["a0", "a1", "a2"])
    bounds = Bounds(universe)
    rel = ast.Relation("r", 1)
    edge = ast.Relation("e", 2)
    bounds.bound(rel, universe.empty(1), universe.all_tuples(1))
    bounds.bound(edge, universe.empty(2),
                 universe.tuple_set(2, [("a0", "a1"), ("a1", "a2")]))
    formula = ast.And([ast.Some(rel), ast.Some(edge)])
    return formula, bounds, (rel, edge)


def _module():
    module = Module("shimtest")
    node = module.sig("Node")
    module.fact(ast.Some(node.relation))
    assertion = ast.CardinalityGe(node.relation, 1)
    return module, assertion


def _auction():
    network = AgentNetwork.line(2)
    items = ["x"]
    policies = {agent: submodular_policy({"x": 10.0 + agent}, target=1)
                for agent in network.agents()}
    return network, items, policies


def _instance_key(bounds, instance):
    return tuple(
        (rel.name, frozenset(instance.value_of(rel)))
        for rel in sorted(bounds.relations(), key=lambda r: r.name)
    )


def _call_warns_exactly_once(fn, *args, **kwargs):
    """Run ``fn`` asserting exactly one DeprecationWarning is emitted."""
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        result = fn(*args, **kwargs)
        if hasattr(result, "__next__"):  # force lazy generators
            result = list(result)
    deprecations = [w for w in caught
                    if issubclass(w.category, DeprecationWarning)]
    assert len(deprecations) == 1, [str(w.message) for w in deprecations]
    assert "deprecated" in str(deprecations[0].message)
    return result, str(deprecations[0].message)


class TestEngineShims:
    def test_solve_warns_once_and_matches_facade(self):
        formula, bounds, _ = _relational_problem()
        legacy, message = _call_warns_exactly_once(
            engine.solve, formula, bounds)
        assert "repro.api.solve" in message
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            facade = api.solve(formula, bounds)
        assert legacy.satisfiable == facade.satisfiable
        assert (_instance_key(bounds, legacy.instance)
                == _instance_key(bounds, facade.instance))
        assert legacy.stats.num_clauses == facade.stats.num_clauses

    def test_iter_solutions_warns_once_and_matches_enumerate(self):
        formula, bounds, _ = _relational_problem()
        legacy, message = _call_warns_exactly_once(
            engine.iter_solutions, formula, bounds)
        assert "repro.api.enumerate" in message
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            facade = api.enumerate(formula, bounds)
        assert ({_instance_key(bounds, i) for i in legacy}
                == {_instance_key(bounds, i) for i in facade.instances})

    def test_count_solutions_warns_once_and_matches_enumerate(self):
        formula, bounds, _ = _relational_problem()
        legacy, _ = _call_warns_exactly_once(
            engine.count_solutions, formula, bounds)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            facade = api.enumerate(formula, bounds)
        assert legacy == len(facade.instances)

    def test_unsat_verdict_matches_too(self):
        _, bounds, (rel, _) = _relational_problem()
        contradiction = ast.And([ast.Some(rel), ast.No(rel)])
        legacy, _ = _call_warns_exactly_once(
            engine.solve, contradiction, bounds)
        assert not legacy.satisfiable
        assert legacy.instance is None


class TestAlloyliteShims:
    def test_run_warns_once_and_matches_facade(self):
        module, _ = _module()
        legacy, message = _call_warns_exactly_once(alloylite.run, module)
        assert "repro.api.solve" in message
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            facade = api.solve(ModuleProblem(module, "run", None, None))
        assert legacy.satisfiable == facade.satisfiable
        assert legacy.stats.num_clauses == facade.stats.num_clauses
        assert legacy.describe() == facade.describe()

    def test_check_warns_once_and_matches_facade(self):
        module, assertion = _module()
        legacy, message = _call_warns_exactly_once(
            alloylite.check, module, assertion)
        assert "repro.api.check" in message
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            facade = api.check(module, assertion)
        assert legacy.valid == facade.holds
        assert (legacy.counterexample is None) == (facade.instance is None)

    def test_check_counterexample_instances_match(self):
        module, _ = _module()
        node = module.sigs[0]
        falsifiable = ast.No(node.relation)  # facts force some Node
        legacy, _ = _call_warns_exactly_once(
            alloylite.check, module, falsifiable)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            facade = api.check(module, falsifiable)
        assert not legacy.valid and not facade.holds
        _, bounds, _ = module.compile(Scope())
        assert (_instance_key(bounds, legacy.counterexample)
                == _instance_key(bounds, facade.instance))

    def test_iter_instances_warns_once_and_matches_enumerate(self):
        module, _ = _module()
        legacy, message = _call_warns_exactly_once(
            alloylite.iter_instances, module)
        assert "repro.api.enumerate" in message
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            facade = api.enumerate(ModuleProblem(module, "run", None, None))
        _, bounds, _ = module.compile(Scope())
        assert ({_instance_key(bounds, i) for i in legacy}
                == {_instance_key(bounds, i) for i in facade.instances})


class TestCheckingShim:
    def test_explore_message_orders_warns_once_and_matches_explore(self):
        network, items, policies = _auction()
        legacy, message = _call_warns_exactly_once(
            explore_message_orders, network, items, policies,
            max_rounds=6, max_paths=200)
        assert "explore" in message
        plain = explore(network, items, policies, max_rounds=6,
                        max_paths=200)
        assert legacy.all_converged == plain.all_converged
        assert legacy.paths_explored == plain.paths_explored
        assert legacy.max_rounds_to_converge == plain.max_rounds_to_converge
        assert legacy.counterexample == plain.counterexample


class TestShimsWarnPerCall:
    @pytest.mark.parametrize("invoke", [
        lambda: engine.solve(*_relational_problem()[:2]),
        lambda: list(engine.iter_solutions(*_relational_problem()[:2],
                                           limit=1)),
        lambda: alloylite.run(_module()[0]),
        lambda: explore_message_orders(*_auction(), max_rounds=4,
                                       max_paths=50),
    ])
    def test_every_call_warns_again(self, invoke):
        """``always``-filtered: the warning fires on each call, not once
        per interpreter (callers must see it wherever they call from)."""
        for _ in range(2):
            with warnings.catch_warnings(record=True) as caught:
                warnings.simplefilter("always")
                invoke()
            deprecations = [w for w in caught
                            if issubclass(w.category, DeprecationWarning)]
            assert len(deprecations) == 1
