"""Tests for the repro.api unified verification facade."""
