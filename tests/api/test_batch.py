"""``solve_many``: batch parity with sequential ``solve`` plus caching.

The acceptance bar: a batch over 50+ campaign-spec problems matches
sequential façade results exactly, and a warm re-run over the same cache
directory is pure cache hits — from any worker count, since execution
knobs are excluded from the cache key.
"""

import pytest

from repro import api
from repro.api.batch import batch_cache_key
from repro.campaign.runner import ResultCache
from repro.campaign.specs import random_sweep

# 50+ seeded relational problems (3-atom universes keep each solve fast).
BATCH_SPECS = random_sweep(
    "relational", 52, base_seed=77,
    num_atoms=(3, 3), depth=(1, 2), max_edges=(0, 3),
)


def _signature(result):
    """Comparable identity of a result: verdict + witnessing valuations."""
    return (
        result.verdict,
        [api.instance_payload(inst) for inst in result.instances],
    )


@pytest.fixture(scope="module")
def problems():
    return [api.problem_from_spec(spec) for spec in BATCH_SPECS]


@pytest.fixture(scope="module")
def sequential(problems):
    return [api.solve(problem) for problem in problems]


class TestBatchParity:
    def test_cold_batch_matches_sequential_and_warm_run_hits_cache(
            self, problems, sequential, tmp_path):
        cache_dir = tmp_path / "batch_cache"
        cold = api.solve_many(problems, cache_dir=cache_dir)
        assert len(cold) == len(problems) >= 50
        assert [_signature(r) for r in cold] \
            == [_signature(r) for r in sequential]
        assert not any(r.detail.get("cached") for r in cold)
        assert all(r.error is None for r in cold)

        warm = api.solve_many(problems, cache_dir=cache_dir)
        assert all(r.detail.get("cached") for r in warm)
        assert [_signature(r) for r in warm] \
            == [_signature(r) for r in sequential]

    def test_sharded_batch_matches_sequential(self, problems, sequential,
                                              tmp_path):
        subset = problems[:10]
        sharded = api.solve_many(subset, workers=2,
                                 cache_dir=tmp_path / "pool_cache")
        assert [_signature(r) for r in sharded] \
            == [_signature(r) for r in sequential[:10]]

    def test_pool_size_does_not_change_cache_key(self, problems, tmp_path):
        cache_dir = tmp_path / "shared_cache"
        api.solve_many(problems[:6], workers=2, cache_dir=cache_dir)
        warm = api.solve_many(problems[:6], workers=1, cache_dir=cache_dir)
        assert all(r.detail.get("cached") for r in warm)

    def test_uncached_batch_has_no_cache_side_effects(self, problems):
        results = api.solve_many(problems[:3])
        assert all(r.detail.get("cached") is None for r in results)

    def test_results_in_input_order(self, problems, sequential, tmp_path):
        reversed_problems = list(reversed(problems[:8]))
        results = api.solve_many(reversed_problems,
                                 cache_dir=tmp_path / "order_cache")
        expected = list(reversed(sequential[:8]))
        assert [_signature(r) for r in results] \
            == [_signature(r) for r in expected]


class TestBatchCacheSemantics:
    def test_cache_key_depends_on_semantic_options(self, problems):
        base = api.Options()
        assert (batch_cache_key(problems[0], base)
                == batch_cache_key(problems[0], base.replace(workers=4)))
        assert (batch_cache_key(problems[0], base)
                != batch_cache_key(problems[0], base.replace(symmetry=0)))
        assert (batch_cache_key(problems[0], base)
                != batch_cache_key(problems[1], base))

    def test_error_results_are_not_cached(self, tmp_path, problems):
        class ExplodingBackend:
            name = "exploding-test"

            def supports(self, problem):
                return True

            def solve(self, problem, options):
                raise RuntimeError("deliberate test failure")

            def enumerate(self, problem, options):
                raise RuntimeError("deliberate test failure")

        from repro.api.backends import _REGISTRY

        api.register_backend(ExplodingBackend())
        try:
            cache_dir = tmp_path / "error_cache"
            failed = api.solve_many(problems[:2], solver="exploding-test",
                                    cache_dir=cache_dir)
            assert all(r.verdict is api.Verdict.ERROR for r in failed)
            assert all("deliberate test failure" in r.error for r in failed)
            cache = ResultCache(cache_dir)
            assert len(cache) == 0
        finally:
            _REGISTRY.pop("exploding-test", None)

    def test_bad_workers_rejected(self, problems):
        with pytest.raises(ValueError, match="workers must be an integer"):
            api.solve_many(problems[:1], workers=0)

    def test_progress_callback_sees_every_result(self, problems, tmp_path):
        seen = []
        api.solve_many(problems[:5], cache_dir=tmp_path / "progress_cache",
                       progress=lambda index, result: seen.append(index))
        assert sorted(seen) == [0, 1, 2, 3, 4]

    def test_protocol_problems_batch(self, tmp_path):
        specs = random_sweep("mca", 4, base_seed=3, num_agents=(2, 3),
                             num_items=(1, 2), target=(1, 1))
        protocol_problems = [api.problem_from_spec(s) for s in specs]
        results = api.solve_many(
            protocol_problems, cache_dir=tmp_path / "protocol_cache",
            max_rounds=8,
        )
        assert all(r.verdict is api.Verdict.HOLDS for r in results)
        warm = api.solve_many(
            protocol_problems, cache_dir=tmp_path / "protocol_cache",
            max_rounds=8,
        )
        assert all(r.detail.get("cached") for r in warm)
