"""``solve_many``: batch parity with sequential ``solve`` plus caching.

The acceptance bar: a batch over 50+ campaign-spec problems matches
sequential façade results exactly, and a warm re-run over the same cache
directory is pure cache hits — from any worker count, since execution
knobs are excluded from the cache key.
"""

import pytest

from repro import api
from repro.api.batch import batch_cache_key
from repro.campaign.runner import ResultCache
from repro.campaign.specs import random_sweep

# 50+ seeded relational problems (3-atom universes keep each solve fast).
BATCH_SPECS = random_sweep(
    "relational", 52, base_seed=77,
    num_atoms=(3, 3), depth=(1, 2), max_edges=(0, 3),
)


def _signature(result):
    """Comparable identity of a result: verdict + witnessing valuations."""
    return (
        result.verdict,
        [api.instance_payload(inst) for inst in result.instances],
    )


@pytest.fixture(scope="module")
def problems():
    return [api.problem_from_spec(spec) for spec in BATCH_SPECS]


@pytest.fixture(scope="module")
def sequential(problems):
    return [api.solve(problem) for problem in problems]


class TestBatchParity:
    def test_cold_batch_matches_sequential_and_warm_run_hits_cache(
            self, problems, sequential, tmp_path):
        cache_dir = tmp_path / "batch_cache"
        cold = api.solve_many(problems, cache_dir=cache_dir)
        assert len(cold) == len(problems) >= 50
        assert [_signature(r) for r in cold] \
            == [_signature(r) for r in sequential]
        assert not any(r.detail.get("cached") for r in cold)
        assert all(r.error is None for r in cold)

        warm = api.solve_many(problems, cache_dir=cache_dir)
        assert all(r.detail.get("cached") for r in warm)
        assert [_signature(r) for r in warm] \
            == [_signature(r) for r in sequential]

    def test_sharded_batch_matches_sequential(self, problems, sequential,
                                              tmp_path):
        subset = problems[:10]
        sharded = api.solve_many(subset, workers=2,
                                 cache_dir=tmp_path / "pool_cache")
        assert [_signature(r) for r in sharded] \
            == [_signature(r) for r in sequential[:10]]

    def test_pool_size_does_not_change_cache_key(self, problems, tmp_path):
        cache_dir = tmp_path / "shared_cache"
        api.solve_many(problems[:6], workers=2, cache_dir=cache_dir)
        warm = api.solve_many(problems[:6], workers=1, cache_dir=cache_dir)
        assert all(r.detail.get("cached") for r in warm)

    def test_uncached_batch_has_no_cache_side_effects(self, problems):
        results = api.solve_many(problems[:3])
        assert all(r.detail.get("cached") is None for r in results)

    def test_results_in_input_order(self, problems, sequential, tmp_path):
        reversed_problems = list(reversed(problems[:8]))
        results = api.solve_many(reversed_problems,
                                 cache_dir=tmp_path / "order_cache")
        expected = list(reversed(sequential[:8]))
        assert [_signature(r) for r in results] \
            == [_signature(r) for r in expected]


class TestTimeoutKnobs:
    """Regression: ``task_timeout`` must never inherit ``Options.timeout``
    — the per-solve budget and the pool's stall bound are separate knobs,
    and conflating them killed healthy batches whose individual solves
    were slower than the per-solve budget."""

    @staticmethod
    def _spy_map_jobs(monkeypatch, captured):
        import repro.campaign.runner as campaign_runner

        real_map_jobs = campaign_runner.map_jobs

        def spy(jobs, worker, record, failure, *, shards, task_timeout):
            captured.append(task_timeout)
            return real_map_jobs(jobs, worker, record, failure,
                                 shards=shards, task_timeout=task_timeout)

        # solve_many imports map_jobs lazily from the runner module at
        # call time, so patching the source module intercepts it.
        monkeypatch.setattr(campaign_runner, "map_jobs", spy)

    def test_stall_bound_ignores_per_solve_timeout(self, problems,
                                                   monkeypatch):
        from repro.api.batch import DEFAULT_TASK_TIMEOUT

        captured = []
        self._spy_map_jobs(monkeypatch, captured)
        results = api.solve_many(problems[:2], timeout=0.001)
        assert all(r.error is None for r in results)
        assert captured == [DEFAULT_TASK_TIMEOUT]

    def test_explicit_task_timeout_wins(self, problems, monkeypatch):
        captured = []
        self._spy_map_jobs(monkeypatch, captured)
        api.solve_many(problems[:2], timeout=0.001, task_timeout=7.5)
        assert captured == [7.5]


class TestBatchCacheSemantics:
    def test_cache_key_depends_on_semantic_options(self, problems):
        base = api.Options()
        assert (batch_cache_key(problems[0], base)
                == batch_cache_key(problems[0], base.replace(workers=4)))
        assert (batch_cache_key(problems[0], base)
                != batch_cache_key(problems[0], base.replace(symmetry=0)))
        assert (batch_cache_key(problems[0], base)
                != batch_cache_key(problems[1], base))

    def test_error_results_are_not_cached(self, tmp_path, problems):
        class ExplodingBackend:
            name = "exploding-test"

            def supports(self, problem):
                return True

            def solve(self, problem, options):
                raise RuntimeError("deliberate test failure")

            def enumerate(self, problem, options):
                raise RuntimeError("deliberate test failure")

        from repro.api.backends import _REGISTRY

        api.register_backend(ExplodingBackend())
        try:
            cache_dir = tmp_path / "error_cache"
            failed = api.solve_many(problems[:2], solver="exploding-test",
                                    cache_dir=cache_dir)
            assert all(r.verdict is api.Verdict.ERROR for r in failed)
            assert all("deliberate test failure" in r.error for r in failed)
            cache = ResultCache(cache_dir)
            assert len(cache) == 0
        finally:
            _REGISTRY.pop("exploding-test", None)

    def test_bad_workers_rejected(self, problems):
        with pytest.raises(ValueError, match="workers must be an integer"):
            api.solve_many(problems[:1], workers=0)

    def test_progress_callback_sees_every_result(self, problems, tmp_path):
        seen = []
        api.solve_many(problems[:5], cache_dir=tmp_path / "progress_cache",
                       progress=lambda index, result: seen.append(index))
        assert sorted(seen) == [0, 1, 2, 3, 4]

    def test_progress_contract_hits_first_in_input_order(
            self, problems, tmp_path):
        """The documented contract: exactly once per problem; cache hits
        first (in input order), then misses in completion order."""
        cache_dir = tmp_path / "contract_cache"
        api.solve_many(problems[:4], cache_dir=cache_dir)
        seen = []
        api.solve_many(
            problems[:6], cache_dir=cache_dir,
            progress=lambda i, r: seen.append(
                (i, bool(r.detail.get("cached")))))
        assert sorted(i for i, _ in seen) == [0, 1, 2, 3, 4, 5]
        assert seen[:4] == [(0, True), (1, True), (2, True), (3, True)]
        assert {i for i, cached in seen[4:] if not cached} == {4, 5}

    def test_corrupt_cache_entries_are_recomputed(self, problems, tmp_path,
                                                  sequential):
        """Regression: a truncated or non-dict cache entry must read as a
        miss and be recomputed, not crash ``solve_many``."""
        cache_dir = tmp_path / "corrupt_cache"
        api.solve_many(problems[:2], cache_dir=cache_dir)
        opts = api.Options()
        keys = [batch_cache_key(problem, opts) for problem in problems[:2]]
        paths = [cache_dir / key[:2] / f"{key}.json" for key in keys]
        assert all(path.is_file() for path in paths)
        truncated = paths[0].read_text(encoding="utf-8")[:10]
        paths[0].write_text(truncated, encoding="utf-8")  # killed writer
        paths[1].write_text("[1, 2, 3]", encoding="utf-8")  # not a dict
        cache = ResultCache(cache_dir)
        assert cache.get(keys[0]) is None
        assert cache.get(keys[1]) is None
        results = api.solve_many(problems[:2], cache_dir=cache_dir)
        assert not any(r.detail.get("cached") for r in results)
        assert [_signature(r) for r in results] \
            == [_signature(r) for r in sequential[:2]]
        # The recompute repaired both entries.
        warm = api.solve_many(problems[:2], cache_dir=cache_dir)
        assert all(r.detail.get("cached") for r in warm)

    def test_protocol_problems_batch(self, tmp_path):
        specs = random_sweep("mca", 4, base_seed=3, num_agents=(2, 3),
                             num_items=(1, 2), target=(1, 1))
        protocol_problems = [api.problem_from_spec(s) for s in specs]
        results = api.solve_many(
            protocol_problems, cache_dir=tmp_path / "protocol_cache",
            max_rounds=8,
        )
        assert all(r.verdict is api.Verdict.HOLDS for r in results)
        warm = api.solve_many(
            protocol_problems, cache_dir=tmp_path / "protocol_cache",
            max_rounds=8,
        )
        assert all(r.detail.get("cached") for r in warm)
