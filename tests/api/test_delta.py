"""Delta verification: diff taxonomy, warm reuse, the fallback contract.

The load-bearing guarantees under test:

* ``diff_problems`` classifies every edit into the documented taxonomy;
* the warm path answers delta-safe edits on the anchored live solver and
  tags results ``detail["delta"]["path"] == "reused"``;
* every non-delta-safe edit falls back to a fresh full solve (and the
  session re-anchors), so ``solve_delta`` verdicts are always identical
  to a fresh ``solve`` — checked here over 50 mutated spec pairs per
  scenario family via the campaign ``delta`` oracle.
"""

import pytest

from repro import api
from repro.api import (
    DeltaSession,
    FormulaProblem,
    ProtocolProblem,
    diff_problems,
    solve_delta,
)
from repro.campaign.oracles import ORACLES
from repro.campaign.specs import ScenarioSpec, materialize, random_sweep
from repro.kodkod import Bounds, Universe, ast, relation


def free_problem(formula_builder=lambda r: r.some()):
    """A FormulaProblem with one free unary relation over three atoms."""
    universe = Universe(["a", "b", "c"])
    r = relation("r", 1)
    bounds = Bounds(universe)
    bounds.bound(r, universe.empty(1), universe.all_tuples(1))
    return FormulaProblem(formula_builder(r), bounds), r


def rebound(problem, rel, *, drop=(), promote=()):
    """A variant of ``problem`` with ``rel``'s bounds edited."""
    universe = problem.bounds.universe
    bounds = Bounds(universe)
    for relation_ in problem.bounds.relations():
        lower = set(problem.bounds.lower(relation_))
        upper = set(problem.bounds.upper(relation_))
        if relation_ is rel:
            upper -= set(drop)
            lower |= set(promote)
        bounds.bound(
            relation_,
            universe.tuple_set(relation_.arity, sorted(lower)),
            universe.tuple_set(relation_.arity, sorted(upper)),
        )
    return FormulaProblem(problem.formula, bounds)


def protocol_problem(seed=0, **params):
    spec = ScenarioSpec.make(
        "mca", seed,
        **{"num_agents": 2, "num_items": 1, "target": 1, **params})
    return api.problem_from_spec(spec)


class TestDiffProblems:
    def test_identical(self):
        problem, _ = free_problem()
        delta = diff_problems(problem, problem)
        assert delta.kind == "identical" and delta.delta_safe

    def test_bounds_narrowed_drop(self):
        problem, r = free_problem()
        variant = rebound(problem, r, drop=[("c",)])
        delta = diff_problems(problem, variant)
        assert delta.kind == "bounds_narrowed" and delta.delta_safe
        assert delta.dropped == (("r", 1, ("c",)),)
        assert delta.promoted == ()
        assert delta.detail["changed_relations"] == ["r"]

    def test_bounds_narrowed_promote(self):
        problem, r = free_problem()
        variant = rebound(problem, r, promote=[("a",)])
        delta = diff_problems(problem, variant)
        assert delta.kind == "bounds_narrowed" and delta.delta_safe
        assert delta.promoted == (("r", 1, ("a",)),)

    def test_bounds_widened_is_not_safe(self):
        problem, r = free_problem()
        variant = rebound(problem, r, drop=[("c",)])
        # The reverse direction adds a tuple the variant's translation
        # would not have: widened, fallback.
        delta = diff_problems(variant, problem)
        assert delta.kind == "bounds_widened" and not delta.delta_safe
        assert delta.detail["widened_upper"] == 1

    def test_demoted_lower_is_widening(self):
        problem, r = free_problem()
        promoted = rebound(problem, r, promote=[("a",)])
        delta = diff_problems(promoted, problem)
        assert delta.kind == "bounds_widened" and not delta.delta_safe
        assert delta.detail["demoted_lower"] == 1

    def test_formula_changed(self):
        problem, r = free_problem()
        changed = FormulaProblem(r.no(), problem.bounds)
        delta = diff_problems(problem, changed)
        assert delta.kind == "formula_changed" and not delta.delta_safe

    def test_universe_changed(self):
        problem, _ = free_problem()
        other, _ = free_problem()
        universe = Universe(["a", "b", "c", "d"])
        r2 = relation("r", 1)
        bounds = Bounds(universe)
        bounds.bound(r2, universe.empty(1), universe.all_tuples(1))
        bigger = FormulaProblem(r2.some(), bounds)
        delta = diff_problems(problem, bigger)
        assert delta.kind == "universe_changed" and not delta.delta_safe

    def test_relations_changed(self):
        problem, r = free_problem()
        universe = problem.bounds.universe
        s = relation("s", 1)
        bounds = Bounds(universe)
        bounds.bound(r, universe.empty(1), universe.all_tuples(1))
        bounds.bound(s, universe.empty(1), universe.all_tuples(1))
        extra = FormulaProblem(problem.formula, bounds)
        delta = diff_problems(problem, extra)
        assert delta.kind == "relations_changed" and not delta.delta_safe
        assert delta.detail["only_new"] == ["s"]

    def test_kind_changed(self):
        problem, _ = free_problem()
        delta = diff_problems(problem, protocol_problem())
        assert delta.kind == "kind_changed" and not delta.delta_safe

    def test_protocol_identical_and_changed(self):
        same = diff_problems(protocol_problem(seed=1), protocol_problem(seed=1))
        assert same.kind == "identical" and same.delta_safe
        changed = diff_problems(protocol_problem(seed=1),
                                protocol_problem(seed=2))
        assert changed.kind == "protocol_changed" and not changed.delta_safe


class TestWarmPath:
    def test_narrowed_bounds_reuse_the_live_solver(self):
        problem, r = free_problem()
        variant = rebound(problem, r, drop=[("c",)])
        session = DeltaSession(problem, symmetry=0)
        result = session.solve(variant)
        provenance = result.detail["delta"]
        assert provenance["path"] == "reused"
        assert provenance["reason"] == "bounds_narrowed"
        assert provenance["dropped"] == 1
        assert provenance["promoted"] == 0
        assert provenance["assumptions"] == 1
        assert provenance["warm_solve_seconds"] >= 0
        assert result.delta is provenance
        fresh = api.solve(variant, symmetry=0)
        assert result.verdict is fresh.verdict

    def test_narrowed_to_unsat_matches_fresh(self):
        problem, r = free_problem()
        empty = rebound(problem, r, drop=[("a",), ("b",), ("c",)])
        session = DeltaSession(problem, symmetry=0)
        result = session.solve(empty)
        assert result.detail["delta"]["path"] == "reused"
        assert result.verdict is api.Verdict.UNSAT
        assert api.solve(empty, symmetry=0).verdict is result.verdict

    def test_promoted_tuple_constrains_the_model(self):
        problem, r = free_problem(lambda rel: ast.TrueF())
        promoted = rebound(problem, r, promote=[("b",)])
        session = DeltaSession(problem, symmetry=0)
        result = session.solve(promoted)
        assert result.detail["delta"]["path"] == "reused"
        assert ("b",) in result.instance.value_of(r)

    def test_identical_resubmission_is_reused(self):
        problem, _ = free_problem()
        session = DeltaSession(problem, symmetry=0)
        result = session.solve(problem)
        assert result.detail["delta"]["path"] == "reused"
        assert result.detail["delta"]["reason"] == "identical"

    def test_chain_of_edits_stays_warm(self):
        problem, r = free_problem()
        session = DeltaSession(problem, symmetry=0)
        for drop in ([("a",)], [("b",)], [("a",), ("b",)]):
            result = session.solve(rebound(problem, r, drop=drop))
            assert result.detail["delta"]["path"] == "reused"
        # The anchor never moved: warm answers diff against it.
        assert session.problem is problem

    def test_identical_protocol_reuses_stored_result(self):
        anchor = protocol_problem(seed=5)
        session = DeltaSession(anchor, max_rounds=8)
        anchor_result = session.result
        assert anchor_result.detail["delta"]["path"] == "cold"
        result = session.solve(protocol_problem(seed=5))
        assert result.detail["delta"]["path"] == "reused"
        assert result.detail["delta"]["reason"] == "identical"
        assert result.verdict is anchor_result.verdict


class TestFallbackContract:
    def test_formula_edit_falls_back_and_reanchors(self):
        problem, r = free_problem()
        changed = FormulaProblem(r.no(), problem.bounds)
        session = DeltaSession(problem, symmetry=0)
        result = session.solve(changed)
        provenance = result.detail["delta"]
        assert provenance["path"] == "fallback"
        assert provenance["reason"] == "formula_changed"
        assert result.verdict is api.solve(changed, symmetry=0).verdict
        # Re-anchored: the edited problem is now warm.
        assert session.problem is changed
        again = session.solve(changed)
        assert again.detail["delta"]["path"] == "reused"

    def test_widened_bounds_fall_back(self):
        problem, r = free_problem()
        narrow = rebound(problem, r, drop=[("c",)])
        session = DeltaSession(narrow, symmetry=0)
        result = session.solve(problem)
        assert result.detail["delta"]["path"] == "fallback"
        assert result.detail["delta"]["reason"] == "bounds_widened"
        assert result.verdict is api.solve(problem, symmetry=0).verdict

    def test_symmetry_disables_reuse(self):
        problem, r = free_problem()
        variant = rebound(problem, r, drop=[("c",)])
        session = DeltaSession(problem, symmetry=2)
        result = session.solve(variant)
        assert result.detail["delta"]["path"] == "fallback"
        assert result.detail["delta"]["reason"] == "symmetry"
        assert result.verdict is api.solve(variant, symmetry=2).verdict

    def test_kind_change_falls_back(self):
        problem, _ = free_problem()
        session = DeltaSession(problem, max_rounds=8)
        edited = protocol_problem()
        result = session.solve(edited)
        assert result.detail["delta"]["path"] == "fallback"
        assert result.detail["delta"]["reason"] == "kind_changed"
        assert result.verdict is api.solve(edited, max_rounds=8).verdict

    def test_protocol_edit_falls_back(self):
        session = DeltaSession(protocol_problem(seed=1), max_rounds=8)
        edited = protocol_problem(seed=2)
        result = session.solve(edited)
        assert result.detail["delta"]["path"] == "fallback"
        assert result.detail["delta"]["reason"] == "protocol_changed"
        assert result.verdict is api.solve(edited, max_rounds=8).verdict

    def test_unsolved_protocol_anchor_falls_back_on_identical(self):
        anchor = protocol_problem(seed=3)
        session = DeltaSession(anchor, solve_anchor=False, max_rounds=8)
        assert session.result is None
        result = session.solve(protocol_problem(seed=3))
        assert result.detail["delta"]["path"] == "fallback"
        assert result.detail["delta"]["reason"] == "unsolved_anchor"

    def test_cold_anchor_is_provenance_tagged(self):
        problem, _ = free_problem()
        session = DeltaSession(problem, symmetry=0)
        assert session.result.detail["delta"] == {
            "path": "cold", "reason": "anchor"}


class TestSolveDeltaFacade:
    def test_one_shot_problem_anchor_reuses(self):
        problem, r = free_problem()
        variant = rebound(problem, r, drop=[("c",)])
        result = solve_delta(problem, variant, symmetry=0)
        assert result.detail["delta"]["path"] == "reused"
        assert result.verdict is api.solve(variant, symmetry=0).verdict

    def test_session_anchor_with_options_is_an_error(self):
        problem, _ = free_problem()
        session = DeltaSession(problem, symmetry=0)
        with pytest.raises(ValueError, match="options are fixed"):
            solve_delta(session, problem, symmetry=0)

    def test_session_anchor_delegates(self):
        problem, r = free_problem()
        session = DeltaSession(problem, symmetry=0)
        result = solve_delta(session, rebound(problem, r, drop=[("a",)]))
        assert result.detail["delta"]["path"] == "reused"

    def test_exported_from_package_root(self):
        import repro

        assert repro.solve_delta is api.solve_delta
        assert repro.DeltaSession is api.DeltaSession


# 50 mutated spec pairs per family, all five families: the acceptance
# sweep.  Auction params stay inside the explorer's tractable envelope;
# vnet additionally caps the exploration budget through spec params.
FAMILY_SWEEPS = {
    "relational": dict(num_atoms=(3, 4), depth=(1, 2), max_edges=(0, 4)),
    "mca": dict(num_agents=(2, 3), num_items=(1, 2), target=(1, 2)),
    "dispatch": dict(num_units=(2, 3), num_blocks=(1, 2),
                     capacity_blocks=(1, 1)),
    "uav": dict(num_uavs=(2, 3), num_tasks=(1, 2), capacity=(1, 1)),
    "vnet": dict(grid_width=(2, 2), grid_height=(2, 2), request_size=(2, 2),
                 explore_rounds=(6, 6), explore_paths=(400, 400)),
}


class TestVerdictEquivalenceSweep:
    @pytest.mark.parametrize("family", sorted(FAMILY_SWEEPS))
    def test_delta_verdicts_match_fresh_over_50_pairs(self, family):
        specs = random_sweep(family, 50, base_seed=1234,
                             **FAMILY_SWEEPS[family])
        disagreements = []
        paths = set()
        for spec in specs:
            outcome = ORACLES["delta"].run(spec, materialize(spec))
            paths.add(outcome.detail["delta_path"])
            if not outcome.agree:
                disagreements.append((spec.label(), outcome.detail))
        assert not disagreements, disagreements
        if family == "relational":
            # The relational mutation mix must exercise both the warm
            # path (bound narrowing) and the fallback path.
            assert paths == {"reused", "fallback"}
