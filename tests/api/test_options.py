"""Options validation: every bad field raises an actionable ValueError."""

import pytest

from repro.api import Options
from repro.api.options import resolve_options


class TestDefaults:
    def test_defaults_are_valid(self):
        opts = Options()
        assert opts.solver is None
        assert opts.symmetry is None
        assert opts.max_instances is None
        assert opts.workers == 1
        assert opts.memoize is True

    def test_replace_revalidates(self):
        with pytest.raises(ValueError, match="workers"):
            Options().replace(workers=0)

    def test_replace_returns_new_instance(self):
        base = Options()
        tuned = base.replace(symmetry=5)
        assert tuned.symmetry == 5
        assert base.symmetry is None


class TestValidationMessages:
    def test_bad_solver_type(self):
        with pytest.raises(ValueError, match=r"solver must be a non-empty "
                                             r"backend name string"):
            Options(solver=7)

    def test_empty_solver(self):
        with pytest.raises(ValueError, match="available_backends"):
            Options(solver="")

    def test_negative_symmetry(self):
        with pytest.raises(ValueError, match=r"symmetry must be a "
                                             r"non-negative integer"):
            Options(symmetry=-3)

    def test_symmetry_mentions_disable_hint(self):
        with pytest.raises(ValueError, match="0 disables symmetry breaking"):
            Options(symmetry=-1)

    def test_bool_symmetry_rejected(self):
        with pytest.raises(ValueError, match="symmetry"):
            Options(symmetry=True)

    def test_zero_max_instances(self):
        with pytest.raises(ValueError, match=r"max_instances must be a "
                                             r"positive integer or None"):
            Options(max_instances=0)

    def test_negative_max_rounds(self):
        with pytest.raises(ValueError, match=r"max_rounds must be a positive "
                                             r"integer bound on protocol"):
            Options(max_rounds=0)

    def test_negative_max_paths(self):
        with pytest.raises(ValueError, match=r"max_paths must be a positive "
                                             r"integer bound on explored"):
            Options(max_paths=-5)

    def test_non_bool_memoize(self):
        with pytest.raises(ValueError, match="memoize must be a bool"):
            Options(memoize=1)

    def test_zero_timeout(self):
        with pytest.raises(ValueError, match=r"timeout must be a positive "
                                             r"number of seconds or None"):
            Options(timeout=0)

    def test_workers_below_one(self):
        with pytest.raises(ValueError, match=r"workers must be an integer "
                                             r">= 1"):
            Options(workers=0)

    def test_workers_message_names_inline_mode(self):
        with pytest.raises(ValueError, match="1 runs inline"):
            Options(workers=-2)

    def test_bool_workers_rejected(self):
        with pytest.raises(ValueError, match="workers"):
            Options(workers=True)


class TestResolveOptions:
    def test_overrides_merge(self):
        opts = resolve_options(Options(symmetry=3), {"workers": 2})
        assert opts.symmetry == 3
        assert opts.workers == 2

    def test_unknown_override_lists_valid_names(self):
        with pytest.raises(ValueError, match=r"unknown option.*symmetri.*"
                                             r"valid options are"):
            resolve_options(None, {"symmetrie": 2})

    def test_non_options_base_rejected(self):
        with pytest.raises(ValueError, match="Options instance or None"):
            resolve_options({"symmetry": 1}, {})


class TestCacheSignature:
    def test_execution_knobs_excluded(self):
        a = Options(workers=1, timeout=None, cache_dir=None)
        b = Options(workers=8, timeout=30.0, cache_dir="/tmp/x")
        assert a.cache_signature() == b.cache_signature()

    def test_semantic_fields_included(self):
        assert (Options(symmetry=0).cache_signature()
                != Options(symmetry=20).cache_signature())
        assert (Options(max_instances=5).cache_signature()
                != Options().cache_signature())
