"""Façade parity: old entry points and repro.api agree on seeded scenarios.

One differential test per backend: the legacy call surface
(``kodkod.engine.solve``/``iter_solutions``, ``alloylite.run``/``check``,
``checking.explore_message_orders``) must produce the same verdicts and
instance sets as the façade on scenarios drawn from ``campaign.specs``.
The legacy names are deprecation shims, so each call is also asserted to
warn.
"""

import warnings

import pytest

from repro import api
from repro.alloylite import Module, Scope
from repro.alloylite import check as legacy_check
from repro.alloylite import iter_instances as legacy_iter_instances
from repro.alloylite import run as legacy_run
from repro.campaign.specs import materialize, random_sweep
from repro.checking import explore_message_orders
from repro.kodkod import ast
from repro.kodkod.engine import (
    count_solutions as legacy_count,
    iter_solutions as legacy_iter,
    solve as legacy_solve,
)
from repro.kodkod.symmetry import DEFAULT_SBP_LENGTH

RELATIONAL_SPECS = random_sweep(
    "relational", 12, base_seed=21,
    num_atoms=(3, 3), depth=(1, 2), max_edges=(0, 3),
)

AUCTION_SPECS = random_sweep(
    "mca", 4, base_seed=33, num_agents=(2, 3), num_items=(1, 2),
    target=(1, 2),
)


def _quiet(fn, *args, **kwargs):
    """Call a deprecated entry point, asserting it warns."""
    with pytest.warns(DeprecationWarning):
        return fn(*args, **kwargs)


class TestKodkodBackendParity:
    @pytest.mark.parametrize(
        "spec", RELATIONAL_SPECS, ids=lambda s: s.label())
    def test_solve_verdict_parity(self, spec):
        scenario = materialize(spec)
        old = _quiet(legacy_solve, scenario.formula, scenario.bounds)
        new = api.solve(api.problem_from_spec(spec))
        assert old.satisfiable == new.satisfiable
        assert old.stats.num_clauses == new.stats.num_clauses
        # Default symmetry parity: both sides break with the same level.
        assert new.detail["symmetry"] == DEFAULT_SBP_LENGTH

    @pytest.mark.parametrize(
        "spec", RELATIONAL_SPECS[:6], ids=lambda s: s.label())
    def test_enumeration_instance_set_parity(self, spec):
        scenario = materialize(spec)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            old_keys = {
                scenario.instance_key(inst)
                for inst in legacy_iter(scenario.formula, scenario.bounds)
            }
            old_count = legacy_count(scenario.formula, scenario.bounds)
        # Share the materialization: relations compare by identity, so
        # instance_key must see the same Relation objects on both paths.
        new = api.enumerate(
            api.FormulaProblem(scenario.formula, scenario.bounds))
        new_keys = {scenario.instance_key(inst) for inst in new.instances}
        assert old_keys == new_keys
        assert old_count == len(new.instances)


class TestExplorerBackendParity:
    @pytest.mark.parametrize("spec", AUCTION_SPECS, ids=lambda s: s.label())
    def test_exploration_verdict_parity(self, spec):
        scenario = materialize(spec)
        old = _quiet(
            explore_message_orders,
            scenario.network, scenario.items, scenario.policies,
            max_rounds=8, max_paths=4000,
        )
        new = api.run_protocol(api.problem_from_spec(spec),
                               max_rounds=8, max_paths=4000)
        assert old.all_converged == new.holds
        assert (old.counterexample is None) == (new.trace is None)
        assert (old.max_rounds_to_converge
                == new.detail["max_rounds_to_converge"])
        assert old.paths_explored == new.detail["paths_explored"]


class TestAlloyliteShimParity:
    @pytest.fixture
    def module(self):
        m = Module()
        a = m.sig("A")
        b = m.sig("B")
        link = a.field("link", b)
        m.fact(ast.Some(a.expr))
        return m, a, b, link

    def test_run_parity(self, module):
        m, a, b, link = module
        scope = Scope(per_sig={"A": 2, "B": 2})
        predicate = ast.Some(link.relation)
        old = _quiet(legacy_run, m, predicate, scope)
        new = api.solve(api.ModuleProblem(m, "run", predicate, scope))
        assert old.satisfiable == new.satisfiable
        assert old.stats.num_clauses == new.stats.num_clauses
        assert old.instance.describe() == new.instance.describe()
        assert old.describe() == new.describe()

    def test_check_parity_holds(self, module):
        m, a, b, link = module
        scope = Scope(per_sig={"A": 1, "B": 1})
        assertion = ast.Some(a.expr)  # a fact, so it holds
        old = _quiet(legacy_check, m, assertion, scope)
        new = api.check(m, assertion, scope)
        assert old.valid and new.holds
        assert old.describe() == new.describe()
        assert (old.describe()
                == "assertion holds within the scope (no counterexample)")

    def test_check_parity_counterexample(self, module):
        m, a, b, link = module
        scope = Scope(per_sig={"A": 1, "B": 1})
        assertion = ast.No(b.expr)  # refuted: sig scopes are exact
        old = _quiet(legacy_check, m, assertion, scope)
        new = api.check(m, assertion, scope)
        assert not old.valid and not new.holds
        assert old.describe() == new.describe()
        assert old.describe().startswith("counterexample found:\n")

    def test_iter_instances_parity(self, module):
        m, a, b, link = module
        scope = Scope(per_sig={"A": 1, "B": 2})
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            old = [inst.describe() for inst in
                   legacy_iter_instances(m, scope=scope)]
        new = [inst.describe() for inst in
               api.enumerate(api.ModuleProblem(m, scope=scope)).instances]
        assert sorted(old) == sorted(new)
        assert old  # the module is satisfiable: parity over a nonempty set

    def test_iter_instances_stays_lazy(self, module):
        m, a, b, link = module
        scope = Scope(per_sig={"A": 2, "B": 2})
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            iterator = legacy_iter_instances(m, scope=scope)
            # One pull must not require enumerating the whole space.
            first = next(iterator)
        assert first is not None
        iterator.close()


class TestModelLayerUnified:
    def test_check_verdict_carries_unified_result(self):
        from repro.model import PolicyCombination, check_combination

        verdict = check_combination(
            PolicyCombination(submodular=True, release_outbid=False),
            num_pnodes=2, num_vnodes=1, max_value=3,
        )
        assert isinstance(verdict.solution, api.Result)
        assert verdict.solution.verdict is api.Verdict.UNSAT
        assert verdict.solution.backend == "kodkod"
        assert verdict.converges
