"""Unit and property-based tests for the CDCL solver."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sat.cnf import CNF
from repro.sat.simplify import brute_force_satisfiable
from repro.sat.solver import Solver, luby, solve_cnf
from repro.sat.types import Status


class TestLuby:
    def test_first_terms(self):
        expected = [1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8]
        assert [luby(i) for i in range(1, 16)] == expected

    def test_zero_rejected(self):
        with pytest.raises(ValueError):
            luby(0)


class TestBasicSolving:
    def test_empty_formula_is_sat(self):
        assert solve_cnf(CNF())[0] is Status.SAT

    def test_single_unit(self):
        cnf = CNF()
        v = cnf.new_var()
        cnf.add_clause([v])
        status, model = solve_cnf(cnf)
        assert status is Status.SAT
        assert model[v]

    def test_contradicting_units(self):
        cnf = CNF()
        v = cnf.new_var()
        cnf.add_clause([v])
        cnf.add_clause([-v])
        assert solve_cnf(cnf)[0] is Status.UNSAT

    def test_empty_clause_unsat(self):
        cnf = CNF()
        cnf.new_var()
        cnf.add_clause([1])
        solver = Solver()
        assert solver.add_cnf(cnf)
        assert not solver.add_clause([-1])
        assert solver.solve() is Status.UNSAT

    def test_implication_chain(self):
        cnf = CNF()
        vs = cnf.new_vars(10)
        cnf.add_clause([vs[0]])
        for a, b in zip(vs, vs[1:]):
            cnf.add_clause([-a, b])
        status, model = solve_cnf(cnf)
        assert status is Status.SAT
        assert all(model[v] for v in vs)

    def test_model_satisfies_all_clauses(self):
        cnf = CNF()
        cnf.new_vars(4)
        clauses = [[1, 2], [-1, 3], [-2, -3], [2, 4], [-4, 1]]
        cnf.extend(clauses)
        status, model = solve_cnf(cnf)
        assert status is Status.SAT
        assert model.satisfies(clauses)

    def test_pigeonhole_3_into_2_unsat(self):
        # Three pigeons, two holes: var p*2+h means pigeon p in hole h.
        cnf = CNF()
        var = {}
        for p in range(3):
            for h in range(2):
                var[p, h] = cnf.new_var()
        for p in range(3):
            cnf.add_clause([var[p, 0], var[p, 1]])
        for h in range(2):
            for p1 in range(3):
                for p2 in range(p1 + 1, 3):
                    cnf.add_clause([-var[p1, h], -var[p2, h]])
        assert solve_cnf(cnf)[0] is Status.UNSAT

    def test_pigeonhole_4_into_3_unsat(self):
        cnf = CNF()
        var = {}
        for p in range(4):
            for h in range(3):
                var[p, h] = cnf.new_var()
        for p in range(4):
            cnf.add_clause([var[p, h] for h in range(3)])
        for h in range(3):
            for p1 in range(4):
                for p2 in range(p1 + 1, 4):
                    cnf.add_clause([-var[p1, h], -var[p2, h]])
        assert solve_cnf(cnf)[0] is Status.UNSAT

    def test_graph_coloring_triangle_2_colors_unsat(self):
        # A triangle is not 2-colorable: var (node, color).
        cnf = CNF()
        var = {}
        for n in range(3):
            for c in range(2):
                var[n, c] = cnf.new_var()
        for n in range(3):
            cnf.add_exactly_one([var[n, c] for c in range(2)])
        for a, b in [(0, 1), (1, 2), (0, 2)]:
            for c in range(2):
                cnf.add_clause([-var[a, c], -var[b, c]])
        assert solve_cnf(cnf)[0] is Status.UNSAT

    def test_graph_coloring_triangle_3_colors_sat(self):
        cnf = CNF()
        var = {}
        for n in range(3):
            for c in range(3):
                var[n, c] = cnf.new_var()
        for n in range(3):
            cnf.add_exactly_one([var[n, c] for c in range(3)])
        for a, b in [(0, 1), (1, 2), (0, 2)]:
            for c in range(3):
                cnf.add_clause([-var[a, c], -var[b, c]])
        status, model = solve_cnf(cnf)
        assert status is Status.SAT
        colors = {n: next(c for c in range(3) if model[var[n, c]]) for n in range(3)}
        assert len(set(colors.values())) == 3

    def test_tautological_clause_ignored(self):
        solver = Solver()
        solver.new_var()
        assert solver.add_clause([1, -1])
        assert solver.solve() is Status.SAT


class TestAssumptions:
    def _xor_instance(self):
        # x XOR y: models are (T,F) and (F,T).
        cnf = CNF()
        x, y = cnf.new_vars(2)
        cnf.add_clause([x, y])
        cnf.add_clause([-x, -y])
        return cnf, x, y

    def test_assumption_forces_branch(self):
        cnf, x, y = self._xor_instance()
        solver = Solver()
        solver.add_cnf(cnf)
        assert solver.solve([x]) is Status.SAT
        assert solver.model()[x] and not solver.model()[y]
        assert solver.solve([y]) is Status.SAT
        assert solver.model()[y] and not solver.model()[x]

    def test_conflicting_assumptions(self):
        cnf, x, y = self._xor_instance()
        solver = Solver()
        solver.add_cnf(cnf)
        assert solver.solve([x, y]) is Status.UNSAT
        # Solver remains usable afterwards.
        assert solver.solve() is Status.SAT

    def test_assumption_of_fixed_variable(self):
        cnf = CNF()
        v = cnf.new_var()
        cnf.add_clause([v])
        solver = Solver()
        solver.add_cnf(cnf)
        assert solver.solve([-v]) is Status.UNSAT
        assert solver.solve([v]) is Status.SAT


class TestIncremental:
    def test_adding_clauses_between_solves(self):
        solver = Solver()
        a = solver.new_var()
        b = solver.new_var()
        solver.add_clause([a, b])
        assert solver.solve() is Status.SAT
        solver.add_clause([-a])
        assert solver.solve() is Status.SAT
        assert solver.model()[b]
        solver.add_clause([-b])
        assert solver.solve() is Status.UNSAT

    def test_stats_populated(self):
        cnf = CNF()
        cnf.new_vars(6)
        random_gen = random.Random(7)
        for _ in range(30):
            clause = random_gen.sample(range(1, 7), 3)
            cnf.add_clause([v if random_gen.random() < 0.5 else -v for v in clause])
        solver = Solver()
        solver.add_cnf(cnf)
        solver.solve()
        assert solver.stats["propagations"] > 0


class TestClauseDatabase:
    def _pigeonhole(self, pigeons, holes):
        cnf = CNF()
        var = {}
        for p in range(pigeons):
            for h in range(holes):
                var[p, h] = cnf.new_var()
        for p in range(pigeons):
            cnf.add_clause([var[p, h] for h in range(holes)])
        for h in range(holes):
            for p1 in range(pigeons):
                for p2 in range(p1 + 1, pigeons):
                    cnf.add_clause([-var[p1, h], -var[p2, h]])
        return cnf

    def test_learned_kept_separate_from_problem(self):
        cnf = self._pigeonhole(4, 3)
        solver = Solver()
        solver.add_cnf(cnf)
        solver.solve()
        db = solver.clause_db_stats()
        assert db["problem_clauses"] == cnf.num_clauses
        assert db["learned_total"] > 0

    def test_reduction_triggers_and_preserves_verdict(self):
        cnf = self._pigeonhole(6, 5)
        solver = Solver(max_learned=20, reduce_growth=1.1)
        solver.add_cnf(cnf)
        assert solver.solve() is Status.UNSAT
        assert solver.stats["db_reductions"] > 0
        assert solver.stats["learned_deleted"] > 0

    def test_reduction_never_deletes_problem_clauses(self):
        cnf = self._pigeonhole(6, 5)
        solver = Solver(max_learned=20, reduce_growth=1.1)
        solver.add_cnf(cnf)
        solver.solve()
        db = solver.clause_db_stats()
        assert db["problem_clauses"] == cnf.num_clauses

    def test_manual_reduce_respects_glue_and_binary(self):
        cnf = self._pigeonhole(5, 4)
        solver = Solver()
        solver.add_cnf(cnf)
        solver.solve()
        arena = solver._arena
        # Snapshot by content: reduce_db may compact the arena and remap ids.
        kept_always = {
            frozenset(arena.clause(c)) for c in solver._learned_db
            if not arena.deleted[c]
            and (arena.size[c] <= 2 or arena.lbd[c] <= 2)
        }
        solver.reduce_db()
        arena = solver._arena
        after = {
            frozenset(arena.clause(c)) for c in solver._learned_db
            if not arena.deleted[c]
        }
        assert kept_always <= after

    def test_lbd_recorded_on_learned_clauses(self):
        cnf = self._pigeonhole(5, 4)
        solver = Solver()
        solver.add_cnf(cnf)
        solver.solve()
        arena = solver._arena
        learned = [c for c in solver._learned_db if not arena.deleted[c]]
        assert learned
        assert all(arena.lbd[c] >= 1 for c in learned)

    @pytest.mark.parametrize("seed", range(15))
    def test_aggressive_reduction_agrees_with_brute_force(self, seed):
        rng = random.Random(seed)
        num_vars = rng.randint(6, 12)
        cnf = random_cnf(num_vars, int(4.2 * num_vars), rng)
        solver = Solver(max_learned=5, reduce_growth=1.05)
        if not solver.add_cnf(cnf):
            assert not brute_force_satisfiable(cnf)
            return
        status = solver.solve()
        assert (status is Status.SAT) == brute_force_satisfiable(cnf)
        if status is Status.SAT:
            assert solver.model().satisfies(cnf.clauses())


class _AuditedSolver(Solver):
    """Solver whose every mid-search reduce_db call is audited.

    Snapshots the locked (reason) clauses immediately before each
    reduction and records any that were evicted or flagged deleted —
    deleting a reason clause would corrupt conflict analysis, so the
    audit list must stay empty forever.
    """

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.reductions_audited = 0
        self.locked_evictions = 0
        self.observed_deletions = 0
        self.compactions = 0
        self.stats_inconsistencies = []

    def _compact_arena(self):
        self.compactions += 1
        super()._compact_arena()

    def reduce_db(self):
        arena = self._arena
        # Snapshot locked clauses by content: compaction may remap ids.
        locked = [frozenset(arena.clause(r)) for r in self._reason
                  if r != -1 and arena.learned[r] and not arena.deleted[r]]
        live_before = sum(
            1 for c in self._learned_db if not arena.deleted[c])
        deleted = super().reduce_db()
        arena = self._arena  # may have been rebuilt by compaction
        self.reductions_audited += 1
        self.observed_deletions += deleted
        # Every reason reference must still point at a live clause, and
        # every locked clause's content must survive in the learned DB.
        for reason in self._reason:
            if reason != -1 and arena.deleted[reason]:
                self.locked_evictions += 1
        survivors = {
            frozenset(arena.clause(c)) for c in self._learned_db
            if not arena.deleted[c]
        }
        for content in locked:
            if content not in survivors:
                self.locked_evictions += 1
        db = self.clause_db_stats()
        live_after = sum(
            1 for c in self._learned_db if not arena.deleted[c])
        # Independently recomputed ground truth vs the reported stats:
        # reduce_db is the only deletion site and this subclass sees every
        # call, so the externally counted totals must match the counters.
        if db["learned_clauses"] != live_after:
            self.stats_inconsistencies.append(
                ("learned_clauses", db["learned_clauses"], live_after))
        if live_before - live_after != deleted:
            self.stats_inconsistencies.append(
                ("deleted_return", deleted, live_before - live_after))
        if db["learned_deleted"] != self.observed_deletions:
            self.stats_inconsistencies.append(
                ("learned_deleted", db["learned_deleted"],
                 self.observed_deletions))
        if db["db_reductions"] != self.reductions_audited:
            self.stats_inconsistencies.append(
                ("db_reductions", db["db_reductions"],
                 self.reductions_audited))
        return deleted


class TestReduceDbRegression:
    """reduce_db must never evict locked clauses, and clause_db_stats
    must stay consistent across restarts and repeated queries."""

    def _pigeonhole(self, pigeons, holes):
        cnf = CNF()
        var = {}
        for p in range(pigeons):
            for h in range(holes):
                var[p, h] = cnf.new_var()
        for p in range(pigeons):
            cnf.add_clause([var[p, h] for h in range(holes)])
        for h in range(holes):
            for p1 in range(pigeons):
                for p2 in range(p1 + 1, pigeons):
                    cnf.add_clause([-var[p1, h], -var[p2, h]])
        return cnf

    def test_reduce_never_evicts_locked_clauses(self):
        # Tiny budget + slow growth force many mid-search reductions
        # while reason clauses are live on the trail.
        solver = _AuditedSolver(max_learned=10, reduce_growth=1.05,
                                restart_base=20)
        solver.add_cnf(self._pigeonhole(6, 5))
        assert solver.solve() is Status.UNSAT
        assert solver.reductions_audited > 0
        assert solver.locked_evictions == 0

    def test_stats_consistent_at_every_reduction(self):
        solver = _AuditedSolver(max_learned=10, reduce_growth=1.05,
                                restart_base=20)
        solver.add_cnf(self._pigeonhole(6, 5))
        solver.solve()
        assert solver.stats["restarts"] > 0  # reductions span restarts
        assert solver.stats_inconsistencies == []

    def test_stats_consistent_across_repeated_queries(self):
        # A satisfiable instance queried repeatedly under assumptions:
        # the clause database persists across queries, and its stats
        # must remain monotone and mutually consistent.
        rng = random.Random(11)
        cnf = random_cnf(12, 50, rng)
        solver = _AuditedSolver(max_learned=10, reduce_growth=1.05,
                                restart_base=20)
        if not solver.add_cnf(cnf):
            return
        previous_learned_total = 0
        for query in range(6):
            assumption = (query % 12) + 1
            solver.solve([assumption if query % 2 else -assumption])
            db = solver.clause_db_stats()
            assert db["learned_total"] >= previous_learned_total
            previous_learned_total = db["learned_total"]
            assert db["problem_clauses"] <= cnf.num_clauses
            assert db["glue_clauses"] <= db["learned_clauses"]
            assert (db["learned_clauses"]
                    <= db["learned_total"] - db["learned_deleted"])
        assert solver.locked_evictions == 0
        assert solver.stats_inconsistencies == []


def random_cnf(draw_vars, draw_clauses, rng):
    cnf = CNF()
    cnf.new_vars(draw_vars)
    for _ in range(draw_clauses):
        width = rng.randint(1, min(3, draw_vars))
        chosen = rng.sample(range(1, draw_vars + 1), width)
        cnf.add_clause([v if rng.random() < 0.5 else -v for v in chosen])
    return cnf


class TestAgainstBruteForce:
    @pytest.mark.parametrize("seed", range(30))
    def test_random_3cnf_agrees_with_brute_force(self, seed):
        rng = random.Random(seed)
        num_vars = rng.randint(3, 10)
        num_clauses = rng.randint(1, 4 * num_vars)
        cnf = random_cnf(num_vars, num_clauses, rng)
        status, model = solve_cnf(cnf)
        expected = brute_force_satisfiable(cnf)
        assert (status is Status.SAT) == expected
        if model is not None:
            assert model.satisfies(cnf.clauses())


@st.composite
def cnf_instances(draw):
    num_vars = draw(st.integers(min_value=1, max_value=8))
    num_clauses = draw(st.integers(min_value=0, max_value=24))
    clauses = []
    for _ in range(num_clauses):
        width = draw(st.integers(min_value=1, max_value=min(3, num_vars)))
        variables = draw(
            st.lists(
                st.integers(min_value=1, max_value=num_vars),
                min_size=width,
                max_size=width,
                unique=True,
            )
        )
        signs = draw(st.lists(st.booleans(), min_size=width, max_size=width))
        clauses.append([v if s else -v for v, s in zip(variables, signs)])
    return num_vars, clauses


class TestSolverProperties:
    @given(cnf_instances())
    @settings(max_examples=120, deadline=None)
    def test_sat_answer_matches_oracle(self, instance):
        num_vars, clauses = instance
        cnf = CNF(num_vars)
        cnf.extend(clauses)
        status, model = solve_cnf(cnf)
        assert (status is Status.SAT) == brute_force_satisfiable(cnf)
        if model is not None:
            assert model.satisfies(clauses)

    @given(cnf_instances())
    @settings(max_examples=60, deadline=None)
    def test_solving_twice_is_stable(self, instance):
        num_vars, clauses = instance
        cnf = CNF(num_vars)
        cnf.extend(clauses)
        solver = Solver()
        if not solver.add_cnf(cnf):
            return
        first = solver.solve()
        second = solver.solve()
        assert first == second


class _FallbackForcedSolver(Solver):
    """Solver whose branching heap is drained before every decision.

    Every pick therefore goes through the heap-exhausted fallback scan
    in ``_pick_branch_var``, so comparing its trajectory against a
    normal solver pins the fallback to the exact heap order.
    """

    def _pick_branch_var(self):
        while self._order_heap.pop() is not None:
            pass
        return super()._pick_branch_var()


class TestBranchFallbackRegression:
    """The heap-exhausted fallback must respect activity order —
    highest activity wins, ties to the lowest index — so decisions do
    not depend on which variables happen to still sit in the heap."""

    @staticmethod
    def _drained_solver() -> Solver:
        solver = Solver()
        cnf = CNF()
        cnf.new_vars(5)
        cnf.add_clause([1, 2, 3, 4, 5])
        assert solver.add_cnf(cnf)
        while solver._order_heap.pop() is not None:
            pass
        return solver

    def test_fallback_picks_highest_activity_ties_to_lowest_var(self):
        solver = self._drained_solver()
        solver._activity[2] = 4.0
        solver._activity[4] = 4.0
        solver._activity[5] = 1.0
        assert solver._pick_branch_var() == 2

    def test_fallback_skips_assigned_vars(self):
        solver = self._drained_solver()
        solver._activity[2] = 4.0
        solver._activity[4] = 4.0
        solver._assign[2] = 1  # _TRUE: var 2 is taken
        assert solver._pick_branch_var() == 4

    def test_fallback_returns_none_when_all_assigned(self):
        solver = self._drained_solver()
        for var in range(1, 6):
            solver._assign[var] = 1
        assert solver._pick_branch_var() is None

    @pytest.mark.parametrize("seed", [0, 3, 9, 17])
    def test_forced_fallback_trajectory_identical(self, seed):
        rng = random.Random(seed)
        num_vars = rng.randint(8, 14)
        cnf = random_cnf(num_vars, 4 * num_vars, rng)
        normal, forced = Solver(), _FallbackForcedSolver()
        ok = normal.add_cnf(cnf)
        assert forced.add_cnf(cnf) == ok
        if not ok:
            return
        status = normal.solve()
        assert forced.solve() is status
        assert normal.stats == forced.stats
        if status is Status.SAT:
            assert normal.model().values == forced.model().values
