"""Differential tests for the vector propagation kernel.

The kernel's contract is stronger than verdict agreement: a ``vector``
solver and a ``pure`` solver fed the same clauses must take *identical*
search trajectories — same models, same learned-clause statistics, same
propagation counts (see :mod:`repro.sat.kernel`).  These tests pin that
equivalence on random CNFs, under assumptions, across incremental
enumeration with an aggressive clause-database budget, and against the
brute-force reference.
"""

import random

import pytest

from repro.sat.cnf import CNF
from repro.sat.simplify import brute_force_satisfiable
from repro.sat.solver import Solver, solve_cnf
from repro.sat.types import Status

pytestmark = pytest.mark.filterwarnings("ignore::DeprecationWarning")


def random_cnf(rng: random.Random, num_vars: int, num_clauses: int,
               max_width: int = 4) -> CNF:
    cnf = CNF()
    for _ in range(num_vars):
        cnf.new_var()
    for _ in range(num_clauses):
        width = rng.randint(1, max_width)
        cnf.add_clause([rng.choice([1, -1]) * rng.randint(1, num_vars)
                        for _ in range(width)])
    return cnf


def chain_cnf(n_chain: int = 32, fanout: int = 80, pool: int = 12):
    """A CNF engineered for long watcher lists (exercises the vector path:
    every noise clause watching ``-c_i`` has the true blocker ``-g``)."""
    cnf = CNF()
    g = cnf.new_var()
    chain = [cnf.new_var() for _ in range(n_chain)]
    xs = [cnf.new_var() for _ in range(pool)]
    cnf.add_clause([g, chain[0]])
    for a, b in zip(chain, chain[1:]):
        cnf.add_clause([-a, b])
    for i, c in enumerate(chain):
        for j in range(fanout):
            cnf.add_clause([-c, -g, xs[(i + j) % pool]])
    return cnf, g


class TestKernelSelection:
    def test_invalid_kernel_rejected(self):
        with pytest.raises(ValueError, match="unknown kernel"):
            Solver(kernel="simd")

    def test_vector_kernel_resolves(self):
        pytest.importorskip("numpy")
        assert Solver(kernel="vector").kernel == "vector"

    def test_pure_is_the_default(self):
        assert Solver().kernel == "pure"

    def test_fallback_without_numpy(self, monkeypatch):
        import repro.sat.kernel as kernel_module

        monkeypatch.setattr(kernel_module, "_np", None)
        solver = Solver(kernel="vector")
        assert solver.kernel == "pure"
        assert solver._kernel is None
        cnf = CNF()
        v = cnf.new_var()
        cnf.add_clause([v])
        assert solver.add_cnf(cnf)
        assert solver.solve() is Status.SAT

    def test_solve_cnf_kernel_parameter(self):
        cnf = CNF()
        v = cnf.new_var()
        cnf.add_clause([v])
        for kernel in ("pure", "vector"):
            status, model = solve_cnf(cnf, kernel=kernel)
            assert status is Status.SAT
            assert model.values[v] is True


class TestTrajectoryEquivalence:
    @pytest.mark.parametrize("seed", range(30))
    def test_random_cnfs_identical_status_model_stats(self, seed):
        pytest.importorskip("numpy")
        rng = random.Random(seed)
        cnf = random_cnf(rng, rng.randint(3, 28), rng.randint(3, 110))
        pure, vector = Solver(kernel="pure"), Solver(kernel="vector")
        assert pure.add_cnf(cnf) == vector.add_cnf(cnf)
        status_pure, status_vector = pure.solve(), vector.solve()
        assert status_pure == status_vector
        if status_pure is Status.SAT:
            assert pure.model().values == vector.model().values
        # Bit-identical trajectories: every counter matches, not just the
        # verdict.
        assert pure.stats == vector.stats

    @pytest.mark.parametrize("seed", range(10))
    def test_agrees_with_brute_force(self, seed):
        pytest.importorskip("numpy")
        rng = random.Random(1000 + seed)
        cnf = random_cnf(rng, rng.randint(3, 10), rng.randint(3, 30))
        status, model = solve_cnf(cnf, kernel="vector")
        assert (status is Status.SAT) == brute_force_satisfiable(cnf)
        if model is not None:
            for clause in cnf.clauses():
                assert any(model.values[abs(l)] == (l > 0) for l in clause)

    @pytest.mark.parametrize("seed", range(12))
    def test_enumeration_with_aggressive_reduction(self, seed):
        """Blocking-clause enumeration under max_learned=5 drives clause
        deletion and arena compaction through both kernels identically."""
        pytest.importorskip("numpy")
        rng = random.Random(2000 + seed)
        num_vars = rng.randint(6, 16)
        cnf = random_cnf(rng, num_vars, rng.randint(15, 70), max_width=3)

        def enumerate_models(kernel):
            solver = Solver(max_learned=5, kernel=kernel)
            if not solver.add_cnf(cnf):
                return []
            models = []
            while len(models) < 64 and solver.solve() is Status.SAT:
                model = solver.model()
                models.append(tuple(sorted(model.values.items())))
                blocking = [-v if model.values[v] else v
                            for v in range(1, num_vars + 1)]
                if not solver.add_clause(blocking):
                    break
            return models

        assert enumerate_models("pure") == enumerate_models("vector")

    @pytest.mark.parametrize("seed", range(8))
    def test_assumptions_identical(self, seed):
        pytest.importorskip("numpy")
        rng = random.Random(3000 + seed)
        num_vars = rng.randint(5, 15)
        cnf = random_cnf(rng, num_vars, rng.randint(10, 50))
        pure, vector = Solver(kernel="pure"), Solver(kernel="vector")
        if not pure.add_cnf(cnf):
            assert not vector.add_cnf(cnf)
            return
        assert vector.add_cnf(cnf)
        for _ in range(6):
            assumptions = [rng.choice([1, -1]) * rng.randint(1, num_vars)
                           for _ in range(rng.randint(0, 3))]
            status_pure = pure.solve(assumptions)
            status_vector = vector.solve(assumptions)
            assert status_pure == status_vector
            if status_pure is Status.SAT:
                assert pure.model().values == vector.model().values
        assert pure.stats == vector.stats


class TestVectorPathProper:
    """Workloads that actually reach the numpy bulk filter (long lists)."""

    def test_long_watchlists_identical_and_sat(self):
        pytest.importorskip("numpy")
        cnf, g = chain_cnf()
        pure, vector = Solver(kernel="pure"), Solver(kernel="vector")
        assert pure.add_cnf(cnf) and vector.add_cnf(cnf)
        for _ in range(5):  # repeated warm solves hit the watch cache
            assert pure.solve([-g]) is Status.SAT
            assert vector.solve([-g]) is Status.SAT
            assert pure.model().values == vector.model().values
        assert pure.stats == vector.stats

    def test_conflict_heavy_trajectory_identical(self):
        """A pigeonhole core with mirror fanout drives the conflict-path
        assists (vectorized analyze/minimize/LBD, batched bumps) — stats
        must stay bit-identical end to end."""
        pytest.importorskip("numpy")
        cnf = CNF()
        holes, fanout = 5, 70
        v = {}
        for p in range(holes + 1):
            for h in range(holes):
                v[p, h] = cnf.new_var()
        guard = cnf.new_var()
        for p in range(holes + 1):
            cnf.add_clause([v[p, h] for h in range(holes)])
        for h in range(holes):
            for p1 in range(holes + 1):
                for p2 in range(p1 + 1, holes + 1):
                    cnf.add_clause([-v[p1, h], -v[p2, h]])
        for var in [v[p, h] for p in range(holes + 1) for h in range(holes)]:
            mirror = cnf.new_var()
            cnf.add_clause([var, mirror])
            for _ in range(fanout):
                cnf.add_clause([-mirror, -guard, cnf.new_var()])
        pure, vector = Solver(kernel="pure"), Solver(kernel="vector")
        assert pure.add_cnf(cnf) and vector.add_cnf(cnf)
        assert pure.solve([-guard]) is Status.UNSAT
        assert vector.solve([-guard]) is Status.UNSAT
        assert pure.stats == vector.stats
        assert pure.stats["conflicts"] > 50  # the analyze path really ran

    def test_watch_cache_survives_clause_additions(self):
        pytest.importorskip("numpy")
        cnf, g = chain_cnf(n_chain=16, fanout=60, pool=8)
        pure, vector = Solver(kernel="pure"), Solver(kernel="vector")
        assert pure.add_cnf(cnf) and vector.add_cnf(cnf)
        assert pure.solve([-g]) == vector.solve([-g]) == Status.SAT
        # Appending clauses grows watch lists; cached arrays must be
        # rebuilt (length check), never reused stale.
        model = vector.model()
        num_vars = cnf.num_vars
        blocking = [-v if model.values[v] else v
                    for v in range(1, num_vars + 1)]
        assert pure.add_clause(blocking) == vector.add_clause(blocking)
        assert pure.solve([-g]) == vector.solve([-g])
        if vector.solve([-g]) is Status.SAT:
            assert pure.solve([-g]) is Status.SAT
            assert pure.model().values == vector.model().values
        assert pure.stats == vector.stats


class TestCampaignFamilyTrajectories:
    """Pure-vs-vector trajectory identity on all five campaign families.

    The conflict-path kernel (vectorized analyze/minimize/LBD, batched
    VSIDS bumps) and the indexed branching heap run on exactly these
    shapes in production, so the bit-identical contract is pinned on the
    CNFs the campaign itself induces: relational specs translate
    directly; the four auction families lift their communication graph
    into the dynamic consensus check (the paper's SAT-shaped workload).
    """

    @staticmethod
    def _family_cnf(family: str, seed: int):
        from repro.campaign.specs import (
            RelationalProblem,
            ScenarioSpec,
            materialize,
        )

        scenario = materialize(ScenarioSpec.make(family, seed))
        if isinstance(scenario, RelationalProblem):
            from repro.kodkod.translate import Translator

            translation = Translator(scenario.bounds).translate(
                scenario.formula)
            return translation.cnf
        from repro.model import build_dynamic

        # Keep the instance tractable: the first three agents of the
        # family's network, re-indexed, with a chain fallback so the
        # induced subgraph stays connected.
        agents = scenario.network.agents()[:3]
        index = {agent: i for i, agent in enumerate(agents)}
        edges = {tuple(sorted((index[a], index[b])))
                 for a, b in scenario.network.graph.edges
                 if a in index and b in index}
        edges.update((i, i + 1) for i in range(len(agents) - 1))
        model = build_dynamic(num_pnodes=len(agents), num_vnodes=2,
                              max_value=2, edges=sorted(edges))
        return model.translate_check().cnf

    @pytest.mark.parametrize("family,seed", [
        ("relational", 0), ("relational", 7), ("relational", 11),
        ("mca", 0), ("dispatch", 1), ("uav", 2), ("vnet", 3),
    ])
    def test_family_trajectories_identical(self, family, seed):
        pytest.importorskip("numpy")
        cnf = self._family_cnf(family, seed)
        pure, vector = Solver(kernel="pure"), Solver(kernel="vector")
        loaded = pure.add_cnf(cnf)
        assert vector.add_cnf(cnf) == loaded
        if not loaded:
            return
        status_pure, status_vector = pure.solve(), vector.solve()
        assert status_pure == status_vector
        if status_pure is Status.SAT:
            assert pure.model().values == vector.model().values
        assert pure.stats == vector.stats

    @pytest.mark.parametrize("seed", [0, 7])
    def test_relational_enumeration_identical(self, seed):
        """Blocking-clause enumeration over a family CNF keeps the two
        kernels in lock-step round after round."""
        pytest.importorskip("numpy")
        cnf = self._family_cnf("relational", seed)

        def enumerate_models(kernel):
            solver = Solver(kernel=kernel)
            if not solver.add_cnf(cnf):
                return [], {}
            models = []
            while len(models) < 20 and solver.solve() is Status.SAT:
                model = solver.model()
                models.append(tuple(sorted(model.values.items())))
                blocking = [-v if model.values[v] else v
                            for v in range(1, cnf.num_vars + 1)]
                if not solver.add_clause(blocking):
                    break
            return models, solver.stats

        pure_models, pure_stats = enumerate_models("pure")
        vector_models, vector_stats = enumerate_models("vector")
        assert pure_models == vector_models
        assert pure_stats == vector_stats
