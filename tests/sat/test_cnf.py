"""Unit tests for the CNF container and Tseitin gate encodings."""

import itertools

import pytest

from repro.sat.cnf import CNF
from repro.sat.types import Model


def all_models(cnf: CNF):
    """Enumerate all full assignments satisfying the CNF (test helper)."""
    clauses = list(cnf.clauses())
    for bits in itertools.product([False, True], repeat=cnf.num_vars):
        model = Model({i + 1: bit for i, bit in enumerate(bits)})
        if model.satisfies(clauses):
            yield model


class TestCNFBasics:
    def test_new_var_sequence(self):
        cnf = CNF()
        assert cnf.new_var() == 1
        assert cnf.new_var() == 2

    def test_new_vars_bulk(self):
        cnf = CNF()
        assert cnf.new_vars(3) == [1, 2, 3]

    def test_add_clause_grows_vars(self):
        cnf = CNF()
        cnf.add_clause([5, -7])
        assert cnf.num_vars == 7

    def test_zero_literal_rejected(self):
        cnf = CNF()
        with pytest.raises(ValueError):
            cnf.add_clause([1, 0])

    def test_negative_initial_vars_rejected(self):
        with pytest.raises(ValueError):
            CNF(-1)

    def test_len_and_iteration(self):
        cnf = CNF()
        cnf.add_clause([1, 2])
        cnf.add_clause([-1])
        assert len(cnf) == 2
        assert list(cnf) == [(1, 2), (-1,)]

    def test_extend(self):
        cnf = CNF()
        cnf.extend([[1], [2, 3]])
        assert cnf.num_clauses == 2

    def test_copy_is_independent(self):
        cnf = CNF()
        cnf.add_clause([1])
        dup = cnf.copy()
        dup.add_clause([2])
        assert cnf.num_clauses == 1
        assert dup.num_clauses == 2


class TestGates:
    def _check_gate(self, build, semantics, arity):
        """Verify a gate encoding agrees with ``semantics`` on all inputs."""
        cnf = CNF()
        out = cnf.new_var()
        inputs = cnf.new_vars(arity)
        build(cnf, out, inputs)
        models = {tuple(m.values[v] for v in [out] + inputs) for m in all_models(cnf)}
        expected = set()
        for bits in itertools.product([False, True], repeat=arity):
            expected.add((semantics(bits),) + bits)
        assert models == expected

    def test_and_gate(self):
        self._check_gate(
            lambda c, o, ins: c.add_and_gate(o, ins), lambda bits: all(bits), 3
        )

    def test_or_gate(self):
        self._check_gate(
            lambda c, o, ins: c.add_or_gate(o, ins), lambda bits: any(bits), 3
        )

    def test_xor_gate(self):
        self._check_gate(
            lambda c, o, ins: c.add_xor_gate(o, ins[0], ins[1]),
            lambda bits: bits[0] != bits[1],
            2,
        )

    def test_ite_gate(self):
        self._check_gate(
            lambda c, o, ins: c.add_ite_gate(o, ins[0], ins[1], ins[2]),
            lambda bits: bits[1] if bits[0] else bits[2],
            3,
        )

    def test_empty_and_is_true(self):
        cnf = CNF()
        out = cnf.new_var()
        cnf.add_and_gate(out, [])
        assert all(m.values[out] for m in all_models(cnf))

    def test_empty_or_is_false(self):
        cnf = CNF()
        out = cnf.new_var()
        cnf.add_or_gate(out, [])
        assert all(not m.values[out] for m in all_models(cnf))

    def test_equiv(self):
        cnf = CNF()
        a, b = cnf.new_vars(2)
        cnf.add_equiv(a, b)
        assert all(m.values[a] == m.values[b] for m in all_models(cnf))

    def test_implies(self):
        cnf = CNF()
        a, b = cnf.new_vars(2)
        cnf.add_implies(a, b)
        assert all((not m.values[a]) or m.values[b] for m in all_models(cnf))


class TestCardinality:
    def test_at_most_one(self):
        cnf = CNF()
        lits = cnf.new_vars(4)
        cnf.add_at_most_one(lits)
        for model in all_models(cnf):
            assert sum(model.values[v] for v in lits) <= 1

    def test_exactly_one_count(self):
        cnf = CNF()
        lits = cnf.new_vars(4)
        cnf.add_exactly_one(lits)
        models = list(all_models(cnf))
        assert len(models) == 4
        for model in models:
            assert sum(model.values[v] for v in lits) == 1

    def test_exactly_one_empty_rejected(self):
        cnf = CNF()
        with pytest.raises(ValueError):
            cnf.add_exactly_one([])
