"""Tests for model enumeration."""

import itertools
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sat.cnf import CNF
from repro.sat.enumerate import count_models, iter_models
from repro.sat.simplify import brute_force_count


class TestEnumeration:
    def test_unsat_yields_nothing(self):
        cnf = CNF()
        v = cnf.new_var()
        cnf.add_clause([v])
        cnf.add_clause([-v])
        assert list(iter_models(cnf)) == []

    def test_free_variables_enumerate_fully(self):
        cnf = CNF(3)  # no clauses: 8 assignments
        assert count_models(cnf) == 8

    def test_exactly_one_has_n_models(self):
        cnf = CNF()
        lits = cnf.new_vars(5)
        cnf.add_exactly_one(lits)
        assert count_models(cnf) == 5

    def test_models_are_distinct(self):
        cnf = CNF(4)
        cnf.add_clause([1, 2])
        seen = set()
        for model in iter_models(cnf):
            key = tuple(model.as_literals())
            assert key not in seen
            seen.add(key)

    def test_limit_respected(self):
        cnf = CNF(4)
        assert count_models(cnf, limit=3) == 3

    def test_limit_zero(self):
        cnf = CNF(2)
        assert count_models(cnf, limit=0) == 0

    def test_negative_limit_rejected(self):
        cnf = CNF(2)
        with pytest.raises(ValueError):
            list(iter_models(cnf, limit=-1))

    def test_projection_collapses_aux_vars(self):
        # y is free; projecting on {x} should give exactly 2 models.
        cnf = CNF()
        x = cnf.new_var()
        cnf.new_var()
        assert count_models(cnf, projection=[x]) == 2

    def test_empty_projection_single_model(self):
        cnf = CNF(3)
        cnf.add_clause([1, 2])
        assert count_models(cnf, projection=[]) == 1

    def test_every_model_satisfies(self):
        cnf = CNF(4)
        clauses = [[1, -2], [2, 3], [-3, 4]]
        cnf.extend(clauses)
        models = list(iter_models(cnf))
        assert models
        for model in models:
            assert model.satisfies(clauses)

    @given(st.integers(min_value=1, max_value=6), st.data())
    @settings(max_examples=40, deadline=None)
    def test_count_matches_brute_force(self, num_vars, data):
        num_clauses = data.draw(st.integers(min_value=0, max_value=10))
        cnf = CNF(num_vars)
        for _ in range(num_clauses):
            width = data.draw(st.integers(min_value=1, max_value=min(3, num_vars)))
            variables = data.draw(
                st.lists(
                    st.integers(min_value=1, max_value=num_vars),
                    min_size=width,
                    max_size=width,
                    unique=True,
                )
            )
            signs = data.draw(st.lists(st.booleans(), min_size=width, max_size=width))
            cnf.add_clause([v if s else -v for v, s in zip(variables, signs)])
        assert count_models(cnf) == brute_force_count(cnf)


class TestEnumerationAgainstBruteForce:
    """Seeded-random differential: the solver's blocking-clause
    enumeration must produce exactly the assignments a brute-force walk
    over all 2^n valuations accepts, on CNFs of up to 12 variables."""

    @staticmethod
    def _random_cnf(rng, num_vars):
        cnf = CNF(num_vars)
        for _ in range(rng.randint(0, 4 * num_vars)):
            width = rng.randint(1, min(3, num_vars))
            chosen = rng.sample(range(1, num_vars + 1), width)
            cnf.add_clause(
                [v if rng.random() < 0.5 else -v for v in chosen])
        return cnf

    @staticmethod
    def _brute_force_assignments(cnf):
        clauses = list(cnf.clauses())
        satisfying = set()
        for bits in itertools.product(
                (False, True), repeat=cnf.num_vars):
            values = dict(enumerate(bits, start=1))
            if all(any(values[abs(lit)] == (lit > 0) for lit in clause)
                   for clause in clauses):
                satisfying.add(bits)
        return satisfying

    @pytest.mark.parametrize("seed", range(20))
    def test_enumerated_assignments_match_brute_force(self, seed):
        rng = random.Random(seed)
        num_vars = rng.randint(4, 12)
        cnf = self._random_cnf(rng, num_vars)
        enumerated = {
            tuple(model[v] for v in range(1, num_vars + 1))
            for model in iter_models(cnf)
        }
        assert enumerated == self._brute_force_assignments(cnf)

    @pytest.mark.parametrize("seed", [100, 101, 102])
    def test_twelve_var_unconstrained_tail(self, seed):
        # Sparse CNFs at the 12-var ceiling: large model sets, so the
        # blocking-clause loop is exercised thousands of times.
        rng = random.Random(seed)
        cnf = CNF(12)
        for _ in range(6):
            chosen = rng.sample(range(1, 13), 3)
            cnf.add_clause(
                [v if rng.random() < 0.5 else -v for v in chosen])
        assert count_models(cnf) == len(
            self._brute_force_assignments(cnf))
