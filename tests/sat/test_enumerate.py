"""Tests for model enumeration."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sat.cnf import CNF
from repro.sat.enumerate import count_models, iter_models
from repro.sat.simplify import brute_force_count


class TestEnumeration:
    def test_unsat_yields_nothing(self):
        cnf = CNF()
        v = cnf.new_var()
        cnf.add_clause([v])
        cnf.add_clause([-v])
        assert list(iter_models(cnf)) == []

    def test_free_variables_enumerate_fully(self):
        cnf = CNF(3)  # no clauses: 8 assignments
        assert count_models(cnf) == 8

    def test_exactly_one_has_n_models(self):
        cnf = CNF()
        lits = cnf.new_vars(5)
        cnf.add_exactly_one(lits)
        assert count_models(cnf) == 5

    def test_models_are_distinct(self):
        cnf = CNF(4)
        cnf.add_clause([1, 2])
        seen = set()
        for model in iter_models(cnf):
            key = tuple(model.as_literals())
            assert key not in seen
            seen.add(key)

    def test_limit_respected(self):
        cnf = CNF(4)
        assert count_models(cnf, limit=3) == 3

    def test_limit_zero(self):
        cnf = CNF(2)
        assert count_models(cnf, limit=0) == 0

    def test_negative_limit_rejected(self):
        cnf = CNF(2)
        with pytest.raises(ValueError):
            list(iter_models(cnf, limit=-1))

    def test_projection_collapses_aux_vars(self):
        # y is free; projecting on {x} should give exactly 2 models.
        cnf = CNF()
        x = cnf.new_var()
        cnf.new_var()
        assert count_models(cnf, projection=[x]) == 2

    def test_empty_projection_single_model(self):
        cnf = CNF(3)
        cnf.add_clause([1, 2])
        assert count_models(cnf, projection=[]) == 1

    def test_every_model_satisfies(self):
        cnf = CNF(4)
        clauses = [[1, -2], [2, 3], [-3, 4]]
        cnf.extend(clauses)
        models = list(iter_models(cnf))
        assert models
        for model in models:
            assert model.satisfies(clauses)

    @given(st.integers(min_value=1, max_value=6), st.data())
    @settings(max_examples=40, deadline=None)
    def test_count_matches_brute_force(self, num_vars, data):
        num_clauses = data.draw(st.integers(min_value=0, max_value=10))
        cnf = CNF(num_vars)
        for _ in range(num_clauses):
            width = data.draw(st.integers(min_value=1, max_value=min(3, num_vars)))
            variables = data.draw(
                st.lists(
                    st.integers(min_value=1, max_value=num_vars),
                    min_size=width,
                    max_size=width,
                    unique=True,
                )
            )
            signs = data.draw(st.lists(st.booleans(), min_size=width, max_size=width))
            cnf.add_clause([v if s else -v for v, s in zip(variables, signs)])
        assert count_models(cnf) == brute_force_count(cnf)
