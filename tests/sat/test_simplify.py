"""Tests for CNF preprocessing."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sat.cnf import CNF
from repro.sat.simplify import (
    brute_force_satisfiable,
    eliminate_pure_literals,
    propagate_units,
    simplify,
)
from repro.sat.solver import solve_cnf
from repro.sat.types import Status

import pytest


class TestUnitPropagation:
    def test_single_unit_fixed(self):
        cnf = CNF()
        v = cnf.new_var()
        cnf.add_clause([v])
        result = propagate_units(cnf)
        assert result.fixed == {v: True}
        assert result.cnf.num_clauses == 0
        assert not result.unsat

    def test_chain_propagates(self):
        cnf = CNF(3)
        cnf.extend([[1], [-1, 2], [-2, 3]])
        result = propagate_units(cnf)
        assert result.fixed == {1: True, 2: True, 3: True}

    def test_conflict_detected(self):
        cnf = CNF(1)
        cnf.extend([[1], [-1]])
        assert propagate_units(cnf).unsat

    def test_satisfied_clauses_removed(self):
        cnf = CNF(3)
        cnf.extend([[1], [1, 2, 3]])
        result = propagate_units(cnf)
        assert result.cnf.num_clauses == 0

    def test_falsified_literals_shrink_clause(self):
        cnf = CNF(3)
        cnf.extend([[1], [-1, 2, 3]])
        result = propagate_units(cnf)
        # [-1,2,3] shrinks to [2,3]: not unit, stays.
        assert list(result.cnf.clauses()) == [(2, 3)]


class TestPureLiterals:
    def test_pure_positive(self):
        cnf = CNF(2)
        cnf.extend([[1, 2], [1, -2]])
        result = eliminate_pure_literals(cnf)
        assert result.fixed[1] is True
        assert result.cnf.num_clauses == 0

    def test_mixed_polarity_not_pure(self):
        cnf = CNF(1)
        cnf.extend([[1], [-1]])
        result = eliminate_pure_literals(cnf)
        assert 1 not in result.fixed


class TestSimplifyFixpoint:
    def test_fully_solved_instance(self):
        cnf = CNF(3)
        cnf.extend([[1], [-1, 2], [3, -2]])
        result = simplify(cnf)
        assert not result.unsat
        assert result.cnf.num_clauses == 0
        assert result.fixed[1] and result.fixed[2] and result.fixed[3]

    def test_unsat_detected(self):
        cnf = CNF(2)
        cnf.extend([[1], [-1, 2], [-2]])
        assert simplify(cnf).unsat

    @given(st.data())
    @settings(max_examples=60, deadline=None)
    def test_simplification_preserves_satisfiability(self, data):
        num_vars = data.draw(st.integers(min_value=1, max_value=7))
        num_clauses = data.draw(st.integers(min_value=0, max_value=15))
        cnf = CNF(num_vars)
        for _ in range(num_clauses):
            width = data.draw(st.integers(min_value=1, max_value=min(3, num_vars)))
            variables = data.draw(
                st.lists(
                    st.integers(min_value=1, max_value=num_vars),
                    min_size=width,
                    max_size=width,
                    unique=True,
                )
            )
            signs = data.draw(st.lists(st.booleans(), min_size=width, max_size=width))
            cnf.add_clause([v if s else -v for v, s in zip(variables, signs)])
        before = brute_force_satisfiable(cnf)
        result = simplify(cnf)
        if result.unsat:
            after = False
        else:
            after = solve_cnf(result.cnf)[0] is Status.SAT
        assert before == after

    def test_fixed_variables_consistent_with_solver_model(self):
        cnf = CNF(4)
        cnf.extend([[1], [-1, 2], [3, 4], [-4]])
        result = simplify(cnf)
        status, model = solve_cnf(cnf)
        assert status is Status.SAT
        for var, value in result.fixed.items():
            # Unit-derived facts must hold in any model; pure-literal fixes
            # are only guaranteed to be *extendable*, so restrict the check
            # to unit consequences here (vars 1, 2, 4).
            if var in (1, 2, 4):
                assert model[var] == value


class TestBruteForce:
    def test_rejects_large_instances(self):
        with pytest.raises(ValueError):
            brute_force_satisfiable(CNF(30))

    def test_simple_sat(self):
        cnf = CNF(2)
        cnf.extend([[1, 2]])
        assert brute_force_satisfiable(cnf)

    def test_simple_unsat(self):
        cnf = CNF(1)
        cnf.extend([[1], [-1]])
        assert not brute_force_satisfiable(cnf)
