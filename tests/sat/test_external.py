"""Tests for the external CDCL bridge (`repro.sat.external`).

The whole suite runs without a real third-party solver installed: the
protocol-conformance paths are exercised by *fake* CDCL subprocesses —
small Python scripts written to ``tmp_path`` and invoked through
``sys.executable`` — and the happy path rides the in-tree
``python -m repro.sat.dimacs solve`` CLI, which speaks the same
SAT-competition protocol.
"""

import os
import sys
import textwrap
from pathlib import Path

import pytest

from repro.sat.cnf import CNF
from repro.sat.external import (
    ExternalRun,
    ExternalSolver,
    ExternalSolverError,
    parse_solver_output,
)
from repro.sat.types import Status

SRC = Path(__file__).resolve().parents[2] / "src"
SELF_HOSTED = [sys.executable, "-m", "repro.sat.dimacs", "solve"]


def sample_cnf():
    cnf = CNF()
    cnf.new_vars(3)
    cnf.extend([[1, 2], [-1, 3], [-2, -3]])
    return cnf


def unsat_cnf():
    cnf = CNF()
    v = cnf.new_var()
    cnf.add_clause([v])
    cnf.add_clause([-v])
    return cnf


def fake_solver(tmp_path, body: str) -> list[str]:
    """Write a fake CDCL subprocess and return its argv prefix.

    ``body`` is the script's source after a header that exposes the CNF
    file path as ``path``.
    """
    script = tmp_path / "fake_solver.py"
    script.write_text("import sys, time\npath = sys.argv[-1]\n"
                      + textwrap.dedent(body), encoding="utf-8")
    return [sys.executable, str(script)]


class TestParseSolverOutput:
    def test_sat_with_model(self):
        status, model = parse_solver_output(
            "c banner\ns SATISFIABLE\nv 1 -2 3 0\n", num_vars=3)
        assert status is Status.SAT
        assert model.values == {1: True, 2: False, 3: True}

    def test_v_lines_split_across_lines(self):
        status, model = parse_solver_output(
            "s SATISFIABLE\nv 1 -2\nv 3\nv 0\n", num_vars=3)
        assert status is Status.SAT
        assert model.values == {1: True, 2: False, 3: True}

    def test_unsat(self):
        status, model = parse_solver_output("s UNSATISFIABLE\n", num_vars=3)
        assert status is Status.UNSAT
        assert model is None

    def test_exit_code_overrides_s_line(self):
        # Exit codes are the authoritative channel in the competition
        # protocol; a contradictory s-line loses.
        status, _ = parse_solver_output(
            "s UNSATISFIABLE\nv 1 0\n", num_vars=1, exit_code=10)
        assert status is Status.SAT

    def test_exit_code_alone_suffices(self):
        status, model = parse_solver_output("", num_vars=2, exit_code=20)
        assert status is Status.UNSAT
        assert model is None

    def test_unmentioned_variables_default_false(self):
        _, model = parse_solver_output(
            "s SATISFIABLE\nv 2 0\n", num_vars=4)
        assert model.values == {1: False, 2: True, 3: False, 4: False}

    def test_sat_without_v_lines_has_no_model(self):
        status, model = parse_solver_output("s SATISFIABLE\n", num_vars=3)
        assert status is Status.SAT
        assert model is None

    def test_no_status_rejected(self):
        with pytest.raises(ExternalSolverError, match="no 's SATISFIABLE'"):
            parse_solver_output("c chatter only\n", num_vars=1)

    def test_malformed_v_token_rejected(self):
        with pytest.raises(ExternalSolverError, match="malformed v-line"):
            parse_solver_output("s SATISFIABLE\nv 1 banana 0\n", num_vars=2)

    def test_model_variable_overflow_rejected(self):
        with pytest.raises(ExternalSolverError, match="variable 9"):
            parse_solver_output("s SATISFIABLE\nv 9 0\n", num_vars=3)


class TestExternalSolverConstruction:
    def test_string_command_is_shlex_split(self):
        solver = ExternalSolver("picosat --some-flag")
        assert solver.command == ["picosat", "--some-flag"]

    def test_list_command_kept_verbatim(self):
        solver = ExternalSolver(SELF_HOSTED)
        assert solver.command == SELF_HOSTED

    def test_empty_command_rejected(self):
        with pytest.raises(ValueError, match="command is empty"):
            ExternalSolver("   ")


class TestFakeSolverSubprocess:
    """Protocol conformance against scripted CDCL stand-ins."""

    def test_model_parsing_from_fake_sat_solver(self, tmp_path):
        command = fake_solver(tmp_path, """
            print("c fake cdcl v0.0")
            print("s SATISFIABLE")
            print("v -1 2")
            print("v 3 0")
            sys.exit(10)
        """)
        run = ExternalSolver(command).solve_cnf(sample_cnf())
        assert isinstance(run, ExternalRun)
        assert run.status is Status.SAT
        assert run.exit_code == 10
        assert run.wall_seconds > 0
        assert run.model.values == {1: False, 2: True, 3: True}

    def test_unsat_exit_code(self, tmp_path):
        command = fake_solver(tmp_path, """
            print("s UNSATISFIABLE")
            sys.exit(20)
        """)
        run = ExternalSolver(command).solve_cnf(sample_cnf())
        assert run.status is Status.UNSAT
        assert run.model is None
        assert run.exit_code == 20

    def test_unexpected_exit_code_rejected_with_stderr(self, tmp_path):
        command = fake_solver(tmp_path, """
            print("segfault-ish diagnostics", file=sys.stderr)
            sys.exit(3)
        """)
        with pytest.raises(ExternalSolverError) as excinfo:
            ExternalSolver(command).solve_cnf(sample_cnf())
        message = str(excinfo.value)
        assert "exited with code 3" in message
        assert "segfault-ish diagnostics" in message

    def test_timeout_kills_the_child(self, tmp_path):
        command = fake_solver(tmp_path, """
            time.sleep(60)
            sys.exit(10)
        """)
        solver = ExternalSolver(command, timeout=0.5)
        with pytest.raises(ExternalSolverError,
                           match="exceeded the 0.5s timeout"):
            solver.solve_cnf(sample_cnf())

    def test_missing_binary_error_is_actionable(self):
        solver = ExternalSolver("definitely-not-a-solver-xyz")
        with pytest.raises(ExternalSolverError) as excinfo:
            solver.solve_cnf(sample_cnf())
        message = str(excinfo.value)
        assert "'definitely-not-a-solver-xyz' was not found" in message
        assert "picosat" in message  # suggests an installable solver
        assert "repro.sat.dimacs" in message  # and the in-tree fallback

    def test_solver_reads_the_dimacs_file(self, tmp_path):
        # The fake echoes the header back as its model size — proves the
        # temp file actually reaches the child intact.
        command = fake_solver(tmp_path, """
            header = [l for l in open(path) if l.startswith("p cnf")][0]
            num_vars = int(header.split()[2])
            print("s SATISFIABLE")
            print("v", " ".join(str(v) for v in range(1, num_vars + 1)), 0)
            sys.exit(10)
        """)
        run = ExternalSolver(command).solve_cnf(sample_cnf())
        assert run.model.values == {1: True, 2: True, 3: True}


class TestSelfHostedEndToEnd:
    """Round trips through the in-tree CLI as the external binary."""

    @pytest.fixture(autouse=True)
    def _pythonpath(self, monkeypatch):
        # The subprocess needs the src layout importable.
        existing = os.environ.get("PYTHONPATH")
        joined = (f"{SRC}{os.pathsep}{existing}" if existing else str(SRC))
        monkeypatch.setenv("PYTHONPATH", joined)

    def test_sat_round_trip(self):
        cnf = sample_cnf()
        run = ExternalSolver(SELF_HOSTED).solve_cnf(cnf)
        assert run.status is Status.SAT
        for clause in cnf.clauses():
            assert any(run.model.values[abs(l)] == (l > 0) for l in clause)

    def test_unsat_round_trip(self):
        run = ExternalSolver(SELF_HOSTED).solve_cnf(unsat_cnf())
        assert run.status is Status.UNSAT
        assert run.exit_code == 20


class TestDimacsBackendRegistry:
    def test_dimacs_prefix_resolves_dynamically(self):
        from repro.api.backends import DimacsBackend, get_backend

        backend = get_backend("dimacs:picosat")
        assert isinstance(backend, DimacsBackend)
        assert backend.name == "dimacs:picosat"
        # Cached: the same command yields the same instance.
        assert get_backend("dimacs:picosat") is backend

    def test_empty_dimacs_command_rejected(self):
        from repro.api.backends import get_backend

        with pytest.raises(ValueError, match="empty external solver"):
            get_backend("dimacs:   ")

    def test_unknown_backend_error_mentions_dimacs(self):
        from repro.api.backends import get_backend

        with pytest.raises(ValueError, match="dimacs:<command>"):
            get_backend("no-such-backend")

    def test_backend_solve_and_enumerate_match_kodkod(self, monkeypatch):
        from repro import api
        from repro.kodkod import ast
        from repro.kodkod.bounds import Bounds
        from repro.kodkod.universe import Universe

        existing = os.environ.get("PYTHONPATH")
        joined = (f"{SRC}{os.pathsep}{existing}" if existing else str(SRC))
        monkeypatch.setenv("PYTHONPATH", joined)

        universe = Universe(["a", "b", "c"])
        r = ast.Relation("r", 1)
        bounds = Bounds(universe)
        bounds.bound(r, universe.empty(1), universe.all_tuples(1))
        formula = ast.Some(r)
        external = f"dimacs:{' '.join(SELF_HOSTED)}"

        reference = api.solve(formula, bounds, solver="kodkod")
        result = api.solve(formula, bounds, solver=external)
        assert result.verdict == reference.verdict
        assert result.solver_stats["kernel"] == "external"
        assert result.solver_stats["external_wall_time"] > 0
        assert result.solver_stats["external_invocations"] == 1

        def keyset(res):
            return {
                tuple(sorted(
                    (rel.name, frozenset(inst.value_of(rel)))
                    for rel in bounds.relations()))
                for inst in res.instances
            }

        ref_enum = api.enumerate(formula, bounds, solver="kodkod", limit=16)
        ext_enum = api.enumerate(formula, bounds, solver=external, limit=16)
        assert len(ext_enum.instances) == len(ref_enum.instances)
        assert keyset(ext_enum) == keyset(ref_enum)
        assert ext_enum.solver_stats["external_invocations"] >= \
            len(ext_enum.instances)
