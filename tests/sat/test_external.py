"""Tests for the external CDCL bridge (`repro.sat.external`).

The whole suite runs without a real third-party solver installed: the
protocol-conformance paths are exercised by *fake* CDCL subprocesses —
small Python scripts written to ``tmp_path`` and invoked through
``sys.executable`` — and the happy path rides the in-tree
``python -m repro.sat.dimacs solve`` CLI, which speaks the same
SAT-competition protocol.
"""

import os
import sys
import textwrap
from pathlib import Path

import pytest

from repro.sat.cnf import CNF
from repro.sat.external import (
    ExternalRun,
    ExternalSolver,
    ExternalSolverError,
    IncrementalExternalSolver,
    parse_solver_output,
)
from repro.sat.types import Status

SRC = Path(__file__).resolve().parents[2] / "src"
SELF_HOSTED = [sys.executable, "-m", "repro.sat.dimacs", "solve"]
INC_SELF_HOSTED = SELF_HOSTED + ["--incremental"]


def sample_cnf():
    cnf = CNF()
    cnf.new_vars(3)
    cnf.extend([[1, 2], [-1, 3], [-2, -3]])
    return cnf


def unsat_cnf():
    cnf = CNF()
    v = cnf.new_var()
    cnf.add_clause([v])
    cnf.add_clause([-v])
    return cnf


def fake_solver(tmp_path, body: str) -> list[str]:
    """Write a fake CDCL subprocess and return its argv prefix.

    ``body`` is the script's source after a header that exposes the CNF
    file path as ``path``.
    """
    script = tmp_path / "fake_solver.py"
    script.write_text("import sys, time\npath = sys.argv[-1]\n"
                      + textwrap.dedent(body), encoding="utf-8")
    return [sys.executable, str(script)]


def fake_inc_solver(tmp_path, body: str) -> list[str]:
    """Write a fake *incremental* CDCL server and return its argv.

    ``body`` runs after a header that provides ``answer(*lines)`` (print
    + flush — piped stdout is block-buffered, so unflushed answers would
    hang the client) and an ``asks()`` generator yielding each stripped
    ``a``-line request from stdin.
    """
    script = tmp_path / "fake_inc_solver.py"
    script.write_text(textwrap.dedent("""\
        import sys, time

        def answer(*lines):
            for line in lines:
                print(line)
            sys.stdout.flush()

        def asks():
            for raw in sys.stdin:
                line = raw.strip()
                if line.startswith("a"):
                    yield line
    """) + textwrap.dedent(body), encoding="utf-8")
    return [sys.executable, str(script)]


class TestParseSolverOutput:
    def test_sat_with_model(self):
        status, model = parse_solver_output(
            "c banner\ns SATISFIABLE\nv 1 -2 3 0\n", num_vars=3)
        assert status is Status.SAT
        assert model.values == {1: True, 2: False, 3: True}

    def test_v_lines_split_across_lines(self):
        status, model = parse_solver_output(
            "s SATISFIABLE\nv 1 -2\nv 3\nv 0\n", num_vars=3)
        assert status is Status.SAT
        assert model.values == {1: True, 2: False, 3: True}

    def test_unsat(self):
        status, model = parse_solver_output("s UNSATISFIABLE\n", num_vars=3)
        assert status is Status.UNSAT
        assert model is None

    def test_exit_code_overrides_s_line(self):
        # Exit codes are the authoritative channel in the competition
        # protocol; a contradictory s-line loses.
        status, _ = parse_solver_output(
            "s UNSATISFIABLE\nv 1 0\n", num_vars=1, exit_code=10)
        assert status is Status.SAT

    def test_exit_code_alone_suffices(self):
        status, model = parse_solver_output("", num_vars=2, exit_code=20)
        assert status is Status.UNSAT
        assert model is None

    def test_unmentioned_variables_default_false(self):
        _, model = parse_solver_output(
            "s SATISFIABLE\nv 2 0\n", num_vars=4)
        assert model.values == {1: False, 2: True, 3: False, 4: False}

    def test_sat_without_v_lines_has_no_model(self):
        status, model = parse_solver_output("s SATISFIABLE\n", num_vars=3)
        assert status is Status.SAT
        assert model is None

    def test_no_status_rejected(self):
        with pytest.raises(ExternalSolverError, match="no 's SATISFIABLE'"):
            parse_solver_output("c chatter only\n", num_vars=1)

    def test_malformed_v_token_rejected(self):
        with pytest.raises(ExternalSolverError, match="malformed v-line"):
            parse_solver_output("s SATISFIABLE\nv 1 banana 0\n", num_vars=2)

    def test_model_variable_overflow_rejected(self):
        with pytest.raises(ExternalSolverError, match="variable 9"):
            parse_solver_output("s SATISFIABLE\nv 9 0\n", num_vars=3)


class TestExternalSolverConstruction:
    def test_string_command_is_shlex_split(self):
        solver = ExternalSolver("picosat --some-flag")
        assert solver.command == ["picosat", "--some-flag"]

    def test_list_command_kept_verbatim(self):
        solver = ExternalSolver(SELF_HOSTED)
        assert solver.command == SELF_HOSTED

    def test_empty_command_rejected(self):
        with pytest.raises(ValueError, match="command is empty"):
            ExternalSolver("   ")


class TestFakeSolverSubprocess:
    """Protocol conformance against scripted CDCL stand-ins."""

    def test_model_parsing_from_fake_sat_solver(self, tmp_path):
        command = fake_solver(tmp_path, """
            print("c fake cdcl v0.0")
            print("s SATISFIABLE")
            print("v -1 2")
            print("v 3 0")
            sys.exit(10)
        """)
        run = ExternalSolver(command).solve_cnf(sample_cnf())
        assert isinstance(run, ExternalRun)
        assert run.status is Status.SAT
        assert run.exit_code == 10
        assert run.wall_seconds > 0
        assert run.model.values == {1: False, 2: True, 3: True}

    def test_unsat_exit_code(self, tmp_path):
        command = fake_solver(tmp_path, """
            print("s UNSATISFIABLE")
            sys.exit(20)
        """)
        run = ExternalSolver(command).solve_cnf(sample_cnf())
        assert run.status is Status.UNSAT
        assert run.model is None
        assert run.exit_code == 20

    def test_unexpected_exit_code_rejected_with_stderr(self, tmp_path):
        command = fake_solver(tmp_path, """
            print("segfault-ish diagnostics", file=sys.stderr)
            sys.exit(3)
        """)
        with pytest.raises(ExternalSolverError) as excinfo:
            ExternalSolver(command).solve_cnf(sample_cnf())
        message = str(excinfo.value)
        assert "exited with code 3" in message
        assert "segfault-ish diagnostics" in message

    def test_timeout_kills_the_child(self, tmp_path):
        command = fake_solver(tmp_path, """
            time.sleep(60)
            sys.exit(10)
        """)
        solver = ExternalSolver(command, timeout=0.5)
        with pytest.raises(ExternalSolverError,
                           match="exceeded the 0.5s timeout"):
            solver.solve_cnf(sample_cnf())

    def test_missing_binary_error_is_actionable(self):
        solver = ExternalSolver("definitely-not-a-solver-xyz")
        with pytest.raises(ExternalSolverError) as excinfo:
            solver.solve_cnf(sample_cnf())
        message = str(excinfo.value)
        assert "'definitely-not-a-solver-xyz' was not found" in message
        assert "picosat" in message  # suggests an installable solver
        assert "repro.sat.dimacs" in message  # and the in-tree fallback

    def test_solver_reads_the_dimacs_file(self, tmp_path):
        # The fake echoes the header back as its model size — proves the
        # temp file actually reaches the child intact.
        command = fake_solver(tmp_path, """
            header = [l for l in open(path) if l.startswith("p cnf")][0]
            num_vars = int(header.split()[2])
            print("s SATISFIABLE")
            print("v", " ".join(str(v) for v in range(1, num_vars + 1)), 0)
            sys.exit(10)
        """)
        run = ExternalSolver(command).solve_cnf(sample_cnf())
        assert run.model.values == {1: True, 2: True, 3: True}


class TestSelfHostedEndToEnd:
    """Round trips through the in-tree CLI as the external binary."""

    @pytest.fixture(autouse=True)
    def _pythonpath(self, monkeypatch):
        # The subprocess needs the src layout importable.
        existing = os.environ.get("PYTHONPATH")
        joined = (f"{SRC}{os.pathsep}{existing}" if existing else str(SRC))
        monkeypatch.setenv("PYTHONPATH", joined)

    def test_sat_round_trip(self):
        cnf = sample_cnf()
        run = ExternalSolver(SELF_HOSTED).solve_cnf(cnf)
        assert run.status is Status.SAT
        for clause in cnf.clauses():
            assert any(run.model.values[abs(l)] == (l > 0) for l in clause)

    def test_unsat_round_trip(self):
        run = ExternalSolver(SELF_HOSTED).solve_cnf(unsat_cnf())
        assert run.status is Status.UNSAT
        assert run.exit_code == 20


class TestDimacsBackendRegistry:
    def test_dimacs_prefix_resolves_dynamically(self):
        from repro.api.backends import DimacsBackend, get_backend

        backend = get_backend("dimacs:picosat")
        assert isinstance(backend, DimacsBackend)
        assert backend.name == "dimacs:picosat"
        # Cached: the same command yields the same instance.
        assert get_backend("dimacs:picosat") is backend

    def test_empty_dimacs_command_rejected(self):
        from repro.api.backends import get_backend

        with pytest.raises(ValueError, match="empty external solver"):
            get_backend("dimacs:   ")

    def test_unknown_backend_error_mentions_dimacs(self):
        from repro.api.backends import get_backend

        with pytest.raises(ValueError, match="dimacs:<command>"):
            get_backend("no-such-backend")

    def test_backend_solve_and_enumerate_match_kodkod(self, monkeypatch):
        from repro import api
        from repro.kodkod import ast
        from repro.kodkod.bounds import Bounds
        from repro.kodkod.universe import Universe

        existing = os.environ.get("PYTHONPATH")
        joined = (f"{SRC}{os.pathsep}{existing}" if existing else str(SRC))
        monkeypatch.setenv("PYTHONPATH", joined)

        universe = Universe(["a", "b", "c"])
        r = ast.Relation("r", 1)
        bounds = Bounds(universe)
        bounds.bound(r, universe.empty(1), universe.all_tuples(1))
        formula = ast.Some(r)
        external = f"dimacs:{' '.join(SELF_HOSTED)}"

        reference = api.solve(formula, bounds, solver="kodkod")
        result = api.solve(formula, bounds, solver=external)
        assert result.verdict == reference.verdict
        assert result.solver_stats["kernel"] == "external"
        assert result.solver_stats["external_wall_time"] > 0
        assert result.solver_stats["external_invocations"] == 1

        def keyset(res):
            return {
                tuple(sorted(
                    (rel.name, frozenset(inst.value_of(rel)))
                    for rel in bounds.relations()))
                for inst in res.instances
            }

        ref_enum = api.enumerate(formula, bounds, solver="kodkod", limit=16)
        ext_enum = api.enumerate(formula, bounds, solver=external, limit=16)
        assert len(ext_enum.instances) == len(ref_enum.instances)
        assert keyset(ext_enum) == keyset(ref_enum)
        assert ext_enum.solver_stats["external_invocations"] >= \
            len(ext_enum.instances)


class TestIncrementalFakeSolver:
    """iCNF protocol conformance against scripted incremental servers."""

    def test_one_spawn_for_many_solve_rounds(self, tmp_path):
        # The fake stamps a marker file on every spawn: three solve
        # rounds (SAT, SAT, UNSAT) must leave exactly one stamp.
        marker = tmp_path / "spawns.log"
        command = fake_inc_solver(tmp_path, f"""
            with open({str(marker)!r}, "a") as fh:
                fh.write("spawn\\n")
            rounds = iter([
                ("s SATISFIABLE", "v 1 2 0"),
                ("s SATISFIABLE", "v -1 2 0"),
                ("s UNSATISFIABLE",),
            ])
            for _ in asks():
                answer(*next(rounds))
        """)
        with IncrementalExternalSolver(command, timeout=30) as inc:
            inc.load_cnf(sample_cnf())
            first = inc.solve()
            assert first.status is Status.SAT
            assert first.model.values == {1: True, 2: True, 3: False}
            inc.add_clause([-1, -2])
            second = inc.solve()
            assert second.status is Status.SAT
            assert second.model.values == {1: False, 2: True, 3: False}
            inc.add_clause([1, -2])
            assert inc.solve().status is Status.UNSAT
            assert inc.spawn_count == 1
            assert inc.solve_count == 3
        assert marker.read_text(encoding="utf-8") == "spawn\n"

    def test_server_receives_header_clauses_and_assumptions(self, tmp_path):
        # The fake echoes its full stdin transcript to a file so the
        # client's protocol framing can be asserted verbatim.
        transcript = tmp_path / "stdin.log"
        command = fake_inc_solver(tmp_path, f"""
            log = open({str(transcript)!r}, "a")
            for raw in sys.stdin:
                log.write(raw)
                log.flush()
                if raw.strip().startswith("a"):
                    answer("s UNSATISFIABLE")
        """)
        with IncrementalExternalSolver(command, timeout=30) as inc:
            inc.load_cnf(sample_cnf())
            inc.add_clause([3])
            assert inc.solve([1, -2]).status is Status.UNSAT
        lines = transcript.read_text(encoding="utf-8").splitlines()
        assert lines[0] == "p inccnf"
        assert lines[1:4] == ["1 2 0", "-1 3 0", "-2 -3 0"]
        assert lines[4] == "3 0"
        assert lines[5] == "a 1 -2 0"

    def test_mid_stream_crash_is_reported(self, tmp_path):
        command = fake_inc_solver(tmp_path, """
            next(asks())
            answer("s SATISFIABLE", "v 1")  # dies before the terminator
            print("heap corruption", file=sys.stderr)
            sys.exit(1)
        """)
        inc = IncrementalExternalSolver(command, timeout=30)
        inc.load_cnf(sample_cnf())
        with pytest.raises(ExternalSolverError) as excinfo:
            inc.solve()
        message = str(excinfo.value)
        assert "exited mid-solve" in message
        assert "heap corruption" in message
        # The instance is burned: further use must fail fast, not hang.
        with pytest.raises(ExternalSolverError, match="already failed"):
            inc.solve()

    def test_malformed_v_line_is_rejected(self, tmp_path):
        command = fake_inc_solver(tmp_path, """
            for _ in asks():
                answer("s SATISFIABLE", "v 1 banana 0")
        """)
        inc = IncrementalExternalSolver(command, timeout=30)
        inc.load_cnf(sample_cnf())
        with pytest.raises(ExternalSolverError, match="malformed v-line"):
            inc.solve()

    def test_timeout_kills_the_persistent_process(self, tmp_path):
        command = fake_inc_solver(tmp_path, """
            next(asks())
            time.sleep(60)
        """)
        inc = IncrementalExternalSolver(command, timeout=0.5)
        inc.load_cnf(sample_cnf())
        with pytest.raises(ExternalSolverError,
                           match="exceeded the 0.5s per-solve timeout"):
            inc.solve()
        # The child must actually be dead, not orphaned.
        assert inc._process.poll() is not None

    def test_one_shot_solver_dies_with_actionable_error(self, tmp_path):
        # A non-incremental command (exits after reading stdin once) must
        # produce the "use dimacs: instead" hint, not a hang.
        command = fake_inc_solver(tmp_path, """
            sys.stdin.read()
            sys.exit(0)
        """)
        inc = IncrementalExternalSolver(command, timeout=10)
        inc.load_cnf(sample_cnf())
        with pytest.raises(ExternalSolverError):
            inc.solve()

    def test_missing_binary_error_is_actionable(self):
        inc = IncrementalExternalSolver("definitely-not-a-solver-xyz")
        with pytest.raises(ExternalSolverError, match="was not found"):
            inc.load_cnf(sample_cnf())

    def test_empty_command_rejected(self):
        with pytest.raises(ValueError, match="command is empty"):
            IncrementalExternalSolver("   ")


class TestIncrementalSelfHosted:
    """The in-tree ``solve --incremental`` server as the external binary."""

    @pytest.fixture(autouse=True)
    def _pythonpath(self, monkeypatch):
        existing = os.environ.get("PYTHONPATH")
        joined = (f"{SRC}{os.pathsep}{existing}" if existing else str(SRC))
        monkeypatch.setenv("PYTHONPATH", joined)

    def test_enumeration_reuses_one_process(self):
        # One clause over three vars: seven models, so the single process
        # serves 8 solve rounds (7 SAT + the closing UNSAT).
        cnf = CNF()
        cnf.new_vars(3)
        cnf.add_clause([1, 2, 3])
        with IncrementalExternalSolver(INC_SELF_HOSTED, timeout=60) as inc:
            inc.load_cnf(cnf)
            models = []
            while True:
                run = inc.solve()
                if run.status is not Status.SAT:
                    break
                for clause in cnf.clauses():
                    assert any(run.model.values[abs(l)] == (l > 0)
                               for l in clause)
                models.append(tuple(sorted(run.model.values.items())))
                inc.add_clause([-v if run.model.values[v] else v
                                for v in range(1, cnf.num_vars + 1)])
            assert inc.spawn_count == 1
            assert inc.solve_count == len(models) + 1
        assert len(models) == len(set(models)) == 7

    def test_matches_one_shot_model_set(self):
        # The incremental server and the one-shot CLI must enumerate the
        # exact same model set of the same formula.
        cnf = sample_cnf()

        one_shot = set()
        working = cnf.copy()
        while True:
            run = ExternalSolver(SELF_HOSTED, timeout=60).solve_cnf(working)
            if run.status is not Status.SAT:
                break
            one_shot.add(tuple(sorted(run.model.values.items())))
            working.add_clause([-v if run.model.values[v] else v
                                for v in range(1, cnf.num_vars + 1)])

        incremental = set()
        with IncrementalExternalSolver(INC_SELF_HOSTED, timeout=60) as inc:
            inc.load_cnf(cnf)
            while True:
                run = inc.solve()
                if run.status is not Status.SAT:
                    break
                incremental.add(tuple(sorted(run.model.values.items())))
                inc.add_clause([-v if run.model.values[v] else v
                                for v in range(1, cnf.num_vars + 1)])
        assert incremental == one_shot

    def test_unsat_and_assumptions(self):
        with IncrementalExternalSolver(INC_SELF_HOSTED, timeout=60) as inc:
            inc.load_cnf(sample_cnf())
            assert inc.solve([-1, 2]).status is Status.SAT
            assert inc.solve([1, 2]).status is Status.UNSAT
            # Assumptions do not stick: the next free solve is SAT again.
            assert inc.solve().status is Status.SAT

    def test_root_unsat_stays_unsat(self):
        with IncrementalExternalSolver(INC_SELF_HOSTED, timeout=60) as inc:
            inc.load_cnf(unsat_cnf())
            assert inc.solve().status is Status.UNSAT
            assert inc.solve().status is Status.UNSAT


class TestDimacsIncBackend:
    """The ``dimacs-inc:`` registry prefix and one-spawn enumeration."""

    @pytest.fixture(autouse=True)
    def _pythonpath(self, monkeypatch):
        existing = os.environ.get("PYTHONPATH")
        joined = (f"{SRC}{os.pathsep}{existing}" if existing else str(SRC))
        monkeypatch.setenv("PYTHONPATH", joined)

    def test_prefix_resolves_dynamically(self):
        from repro.api.backends import DimacsIncBackend, get_backend

        backend = get_backend("dimacs-inc:picosat-inc")
        assert isinstance(backend, DimacsIncBackend)
        assert backend.name == "dimacs-inc:picosat-inc"
        assert get_backend("dimacs-inc:picosat-inc") is backend
        # The inc cache is keyed separately from the one-shot cache.
        assert get_backend("dimacs:picosat-inc") is not backend

    def test_empty_inc_command_rejected(self):
        from repro.api.backends import get_backend

        with pytest.raises(ValueError, match="empty external solver"):
            get_backend("dimacs-inc:   ")

    def _problem(self):
        from repro.kodkod import ast
        from repro.kodkod.bounds import Bounds
        from repro.kodkod.universe import Universe

        universe = Universe(["a", "b", "c"])
        r = ast.Relation("r", 1)
        bounds = Bounds(universe)
        bounds.bound(r, universe.empty(1), universe.all_tuples(1))
        return ast.Some(r), bounds

    def test_enumerate_one_spawn_matches_reinvocation_and_inprocess(self):
        from repro import api

        formula, bounds = self._problem()
        inc_name = f"dimacs-inc:{' '.join(INC_SELF_HOSTED)}"
        one_name = f"dimacs:{' '.join(SELF_HOSTED)}"

        def keyset(res):
            return {
                tuple(sorted(
                    (rel.name, frozenset(inst.value_of(rel)))
                    for rel in bounds.relations()))
                for inst in res.instances
            }

        inc = api.enumerate(formula, bounds, solver=inc_name, limit=16)
        one = api.enumerate(formula, bounds, solver=one_name, limit=16)
        ref = api.enumerate(formula, bounds, solver="kodkod", limit=16)
        assert keyset(inc) == keyset(one) == keyset(ref)
        assert len(inc.instances) == 7  # Some(r) over 3 atoms: 2^3 - 1
        # The headline contract: one process for N models (+1 closing
        # UNSAT round), versus one process per round for the re-invoking
        # backend.
        assert inc.solver_stats["external_spawns"] == 1
        assert inc.solver_stats["external_invocations"] == 8
        assert one.solver_stats["external_invocations"] == 8

    def test_solve_single_spawn_and_verdict(self):
        from repro import api

        formula, bounds = self._problem()
        inc_name = f"dimacs-inc:{' '.join(INC_SELF_HOSTED)}"
        result = api.solve(formula, bounds, solver=inc_name)
        reference = api.solve(formula, bounds, solver="kodkod")
        assert result.verdict == reference.verdict
        assert result.solver_stats["external_spawns"] == 1
        assert result.solver_stats["external_invocations"] == 1
        assert result.solver_stats["kernel"] == "external"
