"""Unit tests for SAT core types."""

import random
from array import array

import pytest

from repro.sat.types import (
    Clause,
    Model,
    VarOrderHeap,
    clause,
    is_positive,
    negate,
    var_of,
)


class TestLiterals:
    def test_var_of_positive(self):
        assert var_of(5) == 5

    def test_var_of_negative(self):
        assert var_of(-7) == 7

    def test_negate_roundtrip(self):
        assert negate(negate(3)) == 3

    def test_negate_sign(self):
        assert negate(4) == -4
        assert negate(-4) == 4

    def test_is_positive(self):
        assert is_positive(2)
        assert not is_positive(-2)


class TestClause:
    def test_zero_literal_rejected(self):
        with pytest.raises(ValueError):
            Clause((1, 0, 2))

    def test_iteration_preserves_order(self):
        assert list(clause(3, -1, 2)) == [3, -1, 2]

    def test_len(self):
        assert len(clause(1, 2, 3)) == 3

    def test_variables(self):
        assert clause(1, -2, 2).variables() == {1, 2}

    def test_tautology_detected(self):
        assert clause(1, -1).is_tautology()

    def test_non_tautology(self):
        assert not clause(1, 2, -3).is_tautology()

    def test_simplified_removes_duplicates(self):
        assert clause(1, 1, -2, 1).simplified() == clause(1, -2)

    def test_empty_clause_allowed(self):
        assert len(clause()) == 0


class TestModel:
    def test_value_of_positive_literal(self):
        model = Model({1: True, 2: False})
        assert model.value_of(1)
        assert not model.value_of(2)

    def test_value_of_negative_literal(self):
        model = Model({1: True, 2: False})
        assert not model.value_of(-1)
        assert model.value_of(-2)

    def test_satisfies_clause(self):
        model = Model({1: False, 2: True})
        assert model.satisfies_clause([1, 2])
        assert not model.satisfies_clause([1, -2])

    def test_satisfies_formula(self):
        model = Model({1: True, 2: True})
        assert model.satisfies([[1], [2], [1, -2]])
        assert not model.satisfies([[-1]])

    def test_as_literals_sorted(self):
        model = Model({2: False, 1: True, 3: True})
        assert model.as_literals() == [1, -2, 3]

    def test_contains(self):
        model = Model({4: True})
        assert 4 in model
        assert 5 not in model


class TestVarOrderHeap:
    """The indexed max-heap behind VSIDS branching (decrease-key order)."""

    @staticmethod
    def _heap(n: int) -> tuple[VarOrderHeap, array]:
        activity = array("d", [0.0] * (n + 1))
        heap = VarOrderHeap(activity)
        for var in range(1, n + 1):
            heap.push(var)
        return heap, activity

    @staticmethod
    def _drain(heap: VarOrderHeap) -> list[int]:
        out = []
        while heap:
            out.append(heap.pop())
        return out

    def test_pop_order_activity_desc_ties_to_lower_var(self):
        heap, activity = self._heap(5)
        activity[2] = 3.0
        activity[4] = 3.0
        activity[5] = 9.0
        for var in (2, 4, 5):
            heap.update(var)
        assert self._drain(heap) == [5, 2, 4, 1, 3]

    def test_push_is_idempotent_no_duplicates(self):
        heap, _ = self._heap(4)
        heap.push(3)
        heap.push(3)
        assert len(heap) == 4
        assert sorted(self._drain(heap)) == [1, 2, 3, 4]

    def test_pop_removes_membership_and_reinsert(self):
        heap, activity = self._heap(3)
        top = heap.pop()
        assert top == 1  # all-zero activity: ties to the lowest var
        assert top not in heap
        heap.push(top)
        assert top in heap
        assert len(heap) == 3

    def test_pop_empty_returns_none(self):
        heap, _ = self._heap(0)
        assert not heap
        assert heap.pop() is None

    def test_update_after_bump_restores_order(self):
        heap, activity = self._heap(6)
        activity[6] = 1.0
        heap.update(6)
        assert heap.pop() == 6
        # Bumping a popped (absent) variable must be a harmless no-op.
        activity[6] = 50.0
        heap.update(6)
        assert 6 not in heap
        assert heap.pop() == 1

    def test_grow_extends_position_table(self):
        activity = array("d", [0.0] * 10)
        heap = VarOrderHeap(activity)
        heap.push(9)
        assert 9 in heap
        assert 3 not in heap

    def test_matches_sorted_reference_on_random_bumps(self):
        rng = random.Random(42)
        n = 40
        heap, activity = self._heap(n)
        for _ in range(300):
            var = rng.randint(1, n)
            activity[var] += rng.random()
            heap.update(var)
        expected = sorted(range(1, n + 1),
                          key=lambda v: (-activity[v], v))
        assert self._drain(heap) == expected

    def test_rescale_preserves_order_without_update(self):
        rng = random.Random(7)
        n = 20
        heap, activity = self._heap(n)
        for var in range(1, n + 1):
            activity[var] = rng.random() * 1e100
            heap.update(var)
        expected = sorted(range(1, n + 1),
                          key=lambda v: (-activity[v], v))
        # A uniform rescale (the solver's 1e-100 overflow guard) keeps
        # the relative order, so no re-heapify is required.
        for var in range(1, n + 1):
            activity[var] *= 1e-100
        assert self._drain(heap) == expected
