"""Unit tests for SAT core types."""

import pytest

from repro.sat.types import Clause, Model, clause, is_positive, negate, var_of


class TestLiterals:
    def test_var_of_positive(self):
        assert var_of(5) == 5

    def test_var_of_negative(self):
        assert var_of(-7) == 7

    def test_negate_roundtrip(self):
        assert negate(negate(3)) == 3

    def test_negate_sign(self):
        assert negate(4) == -4
        assert negate(-4) == 4

    def test_is_positive(self):
        assert is_positive(2)
        assert not is_positive(-2)


class TestClause:
    def test_zero_literal_rejected(self):
        with pytest.raises(ValueError):
            Clause((1, 0, 2))

    def test_iteration_preserves_order(self):
        assert list(clause(3, -1, 2)) == [3, -1, 2]

    def test_len(self):
        assert len(clause(1, 2, 3)) == 3

    def test_variables(self):
        assert clause(1, -2, 2).variables() == {1, 2}

    def test_tautology_detected(self):
        assert clause(1, -1).is_tautology()

    def test_non_tautology(self):
        assert not clause(1, 2, -3).is_tautology()

    def test_simplified_removes_duplicates(self):
        assert clause(1, 1, -2, 1).simplified() == clause(1, -2)

    def test_empty_clause_allowed(self):
        assert len(clause()) == 0


class TestModel:
    def test_value_of_positive_literal(self):
        model = Model({1: True, 2: False})
        assert model.value_of(1)
        assert not model.value_of(2)

    def test_value_of_negative_literal(self):
        model = Model({1: True, 2: False})
        assert not model.value_of(-1)
        assert model.value_of(-2)

    def test_satisfies_clause(self):
        model = Model({1: False, 2: True})
        assert model.satisfies_clause([1, 2])
        assert not model.satisfies_clause([1, -2])

    def test_satisfies_formula(self):
        model = Model({1: True, 2: True})
        assert model.satisfies([[1], [2], [1, -2]])
        assert not model.satisfies([[-1]])

    def test_as_literals_sorted(self):
        model = Model({2: False, 1: True, 3: True})
        assert model.as_literals() == [1, -2, 3]

    def test_contains(self):
        model = Model({4: True})
        assert 4 in model
        assert 5 not in model
