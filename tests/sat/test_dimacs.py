"""Tests for DIMACS serialization."""

import pytest

from repro.sat.cnf import CNF
from repro.sat.dimacs import DimacsError, dumps, load_file, loads, dump_file
from repro.sat.solver import solve_cnf
from repro.sat.types import Status


class TestRoundTrip:
    def _sample(self):
        cnf = CNF()
        cnf.new_vars(4)
        cnf.extend([[1, -2], [3], [-1, 2, -4]])
        return cnf

    def test_dump_format(self):
        text = dumps(self._sample())
        lines = text.strip().splitlines()
        assert lines[0] == "p cnf 4 3"
        assert lines[1] == "1 -2 0"
        assert lines[2] == "3 0"
        assert lines[3] == "-1 2 -4 0"

    def test_comments_emitted(self):
        text = dumps(self._sample(), comments=["hello", "world"])
        assert text.startswith("c hello\nc world\n")

    def test_roundtrip_preserves_clauses(self):
        original = self._sample()
        recovered = loads(dumps(original))
        assert list(recovered.clauses()) == list(original.clauses())
        assert recovered.num_vars == original.num_vars

    def test_file_roundtrip(self, tmp_path):
        original = self._sample()
        path = tmp_path / "instance.cnf"
        dump_file(original, path)
        recovered = load_file(path)
        assert list(recovered.clauses()) == list(original.clauses())

    def test_roundtrip_solvable(self):
        cnf = loads(dumps(self._sample()))
        assert solve_cnf(cnf)[0] is Status.SAT


class TestParsing:
    def test_comments_and_blank_lines_skipped(self):
        cnf = loads("c a comment\n\np cnf 2 1\nc another\n1 -2 0\n")
        assert list(cnf.clauses()) == [(1, -2)]

    def test_multiple_clauses_per_line(self):
        cnf = loads("p cnf 2 2\n1 0 -2 0\n")
        assert list(cnf.clauses()) == [(1,), (-2,)]

    def test_clause_spanning_lines(self):
        cnf = loads("p cnf 3 1\n1 2\n3 0\n")
        assert list(cnf.clauses()) == [(1, 2, 3)]

    def test_missing_final_zero_tolerated(self):
        cnf = loads("p cnf 2 1\n1 -2\n")
        assert list(cnf.clauses()) == [(1, -2)]

    def test_header_var_count_respected(self):
        cnf = loads("p cnf 5 1\n1 0\n")
        assert cnf.num_vars == 5

    def test_bad_header_rejected(self):
        with pytest.raises(DimacsError):
            loads("p dnf 2 1\n1 0\n")

    def test_non_integer_literal_rejected(self):
        with pytest.raises(DimacsError):
            loads("p cnf 2 1\n1 x 0\n")

    def test_var_overflow_rejected(self):
        with pytest.raises(DimacsError):
            loads("p cnf 1 1\n2 0\n")

    def test_clause_count_mismatch_rejected(self):
        with pytest.raises(DimacsError):
            loads("p cnf 2 5\n1 0\n")

    def test_no_header_accepted(self):
        cnf = loads("1 2 0\n-1 0\n")
        assert cnf.num_clauses == 2
        assert cnf.num_vars == 2


class TestTranslationToDimacs:
    def _problem(self):
        from repro.kodkod import ast
        from repro.kodkod.bounds import Bounds
        from repro.kodkod.universe import Universe

        universe = Universe(["a", "b", "c"])
        r = ast.Relation("r", 1)
        bounds = Bounds(universe)
        bounds.bound(r, universe.empty(1), universe.all_tuples(1))
        return ast.Some(r), bounds, r

    def test_round_trip_preserves_verdict(self):
        from repro.kodkod.translate import Translator

        formula, bounds, _ = self._problem()
        translation = Translator(bounds).translate(formula)
        text = translation.to_dimacs(comments=["unit test"])
        assert text.startswith("c unit test\n")
        cnf = loads(text)
        assert solve_cnf(cnf)[0] is solve_cnf(translation.cnf)[0] is Status.SAT

    def test_primary_mapping_in_comments(self):
        from repro.kodkod.translate import Translator

        formula, bounds, r = self._problem()
        translation = Translator(bounds).translate(formula)
        text = translation.to_dimacs()
        for (rel, index), node in translation.tuple_inputs.items():
            atoms = ",".join(str(i) for i in index)
            expected = f"c primary {rel.name}({atoms}) -> " \
                       f"{translation.input_vars[node]}"
            assert expected in text


class TestCli:
    def test_export_then_solve_round_trip(self, tmp_path, capsys):
        from repro.sat.dimacs import main

        out = tmp_path / "problem.cnf"
        assert main(["export", "--family", "relational", "--seed", "1",
                     "-o", str(out)]) == 0
        assert out.exists()
        code = main(["solve", str(out), "--quiet"])
        assert code in (10, 20)
        printed = capsys.readouterr().out
        assert ("s SATISFIABLE" in printed) or ("s UNSATISFIABLE" in printed)
        # The CLI verdict must agree with the in-process pipeline.
        cnf = load_file(out)
        status, _ = solve_cnf(cnf)
        expected = 10 if status is Status.SAT else 20
        assert code == expected

    def test_solve_emits_model_lines(self, tmp_path, capsys):
        from repro.sat.dimacs import main

        path = tmp_path / "tiny.cnf"
        path.write_text("p cnf 2 2\n1 2 0\n-1 0\n", encoding="ascii")
        assert main(["solve", str(path)]) == 10
        printed = capsys.readouterr().out
        assert "v " in printed and "v 0" in printed

    def test_info(self, tmp_path, capsys):
        from repro.sat.dimacs import main

        path = tmp_path / "tiny.cnf"
        path.write_text("p cnf 3 1\n1 -3 0\n", encoding="ascii")
        assert main(["info", str(path)]) == 0
        assert "vars 3 clauses 1" in capsys.readouterr().out

    def test_export_rejects_protocol_family(self, tmp_path):
        from repro.sat.dimacs import main

        with pytest.raises(SystemExit):
            main(["export", "--family", "mca", "--seed", "0",
                  "-o", str(tmp_path / "x.cnf")])

    def test_solve_empty_clause_file_exits_20(self, tmp_path, capsys):
        # A trivially-false CNF parsed from a file (bare "0" terminator)
        # must come back as a clean UNSAT exit code, not a traceback.
        from repro.sat.dimacs import main

        path = tmp_path / "false.cnf"
        path.write_text("p cnf 0 1\n0\n", encoding="ascii")
        assert main(["solve", str(path)]) == 20
        assert "s UNSATISFIABLE" in capsys.readouterr().out

    def test_solve_empty_clause_among_others_exits_20(self, tmp_path,
                                                      capsys):
        from repro.sat.dimacs import main

        path = tmp_path / "false.cnf"
        path.write_text("p cnf 2 3\n1 2 0\n0\n-1 0\n", encoding="ascii")
        assert main(["solve", str(path)]) == 20
        assert "s UNSATISFIABLE" in capsys.readouterr().out

    def test_solve_vector_kernel_matches_pure(self, tmp_path, capsys):
        from repro.sat.dimacs import main

        path = tmp_path / "tiny.cnf"
        path.write_text("p cnf 3 3\n1 2 0\n-1 3 0\n-2 -3 0\n",
                        encoding="ascii")
        pure = main(["solve", str(path), "--kernel", "pure"])
        pure_out = capsys.readouterr().out
        vector = main(["solve", str(path), "--kernel", "vector"])
        vector_out = capsys.readouterr().out
        assert pure == vector == 10
        assert pure_out == vector_out

    def test_solve_flushes_model_through_a_pipe(self, tmp_path):
        # The CLI doubles as an external solver for the `dimacs:` backend:
        # the model must survive block-buffered stdout when the parent
        # only reads the pipe after the child exits.
        import os
        import subprocess
        import sys
        from pathlib import Path

        path = tmp_path / "tiny.cnf"
        path.write_text("p cnf 2 2\n1 2 0\n-1 0\n", encoding="ascii")
        src = Path(__file__).resolve().parents[2] / "src"
        env = dict(os.environ)
        env["PYTHONPATH"] = str(src)
        completed = subprocess.run(
            [sys.executable, "-m", "repro.sat.dimacs", "solve", str(path)],
            capture_output=True, text=True, env=env)
        assert completed.returncode == 10
        assert "s SATISFIABLE" in completed.stdout
        assert "v 0" in completed.stdout
