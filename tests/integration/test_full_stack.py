"""Integration tests spanning the full stack.

These tie together layers that unit tests cover in isolation: the SAT
solver under the relational translator under the Alloy frontend under the
paper's model, and the executable protocol against the bounded checker.
"""

from repro.alloylite import OrderedModule, Scope, check, run
from repro.kodkod import ast
from repro.kodkod.evaluator import Evaluator
from repro.mca import (
    AgentNetwork,
    SynchronousEngine,
    consensus_report,
    message_bound,
)
from repro.model import PolicyCombination, check_combination, compare_encodings
from repro.vnm import embed
from repro.workloads import uav_task_allocation, vn_embedding_workload


class TestVerificationStack:
    def test_alloy_style_model_through_all_layers(self):
        """A small ordered transition model exercises sigs, ordering,
        quantifiers, translation, CDCL and instance extraction at once."""
        m = OrderedModule("counter")
        state = m.sig("State")
        token = m.sig("Token")
        holds = state.field("holds", token, mult="set")
        order = m.ordering(state)
        s, s2 = ast.Variable("s"), ast.Variable("s2")
        m.fact(ast.No(ast.Join(order.first, holds.expr)), "init_empty")
        m.fact(
            ast.ForAll(
                [(s, state.expr), (s2, ast.Join(s, order.next))],
                ast.Subset(ast.Join(s, holds.expr), ast.Join(s2, holds.expr)),
            ),
            "monotone",
        )
        grows = ast.Some(ast.Join(order.last, holds.expr))
        result = run(m, grows, Scope(per_sig={"State": 3, "Token": 2}))
        assert result.satisfiable
        ev = Evaluator(result.instance)
        assert ev.check(grows)
        # And the dual check: "nothing ever held" must be refutable.
        never = ast.ForAll([(s, state.expr)],
                           ast.No(ast.Join(s, holds.expr)))
        verdict = check(m, never, Scope(per_sig={"State": 3, "Token": 2}))
        assert not verdict.valid

    def test_encoding_comparison_consistency(self):
        """The encoding benchmark's invariants hold end to end."""
        comparison = compare_encodings(2, 2)
        assert 0 < comparison.clause_ratio < 1


class TestProtocolVsModel:
    def test_sat_and_execution_agree_on_honest_convergence(self):
        verdict = check_combination(PolicyCombination(True, False),
                                    num_pnodes=2, num_vnodes=2, max_value=4)
        assert verdict.converges
        wl = uav_task_allocation(num_uavs=2, num_tasks=2, seed=0)
        engine = SynchronousEngine(wl.network, wl.items, wl.policies)
        assert engine.run().converged

    def test_bound_used_by_model_matches_protocol_bound(self):
        from repro.model import model_for

        model = model_for(PolicyCombination(True, False),
                          num_pnodes=2, num_vnodes=2)
        network = AgentNetwork.complete(2)
        assert model.num_states == message_bound(network, ["a", "b"]) + 1


class TestApplicationPipelines:
    def test_vn_embedding_full_pipeline(self):
        wl = vn_embedding_workload(num_requests=2, seed=3)
        outcomes = [embed(req, wl.physical) for req in wl.requests]
        for outcome in outcomes:
            if outcome.success:
                assert outcome.validation.valid
                assert outcome.auction.converged

    def test_uav_pipeline_consensus(self):
        wl = uav_task_allocation(num_uavs=4, num_tasks=5, seed=8)
        engine = SynchronousEngine(wl.network, wl.items, wl.policies)
        result = engine.run()
        assert result.converged
        assert consensus_report(engine.agents).consensus
