"""Tests for agent network topologies."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mca.network import AgentNetwork


class TestConstruction:
    def test_self_loop_rejected(self):
        with pytest.raises(ValueError):
            AgentNetwork([(0, 0)])

    def test_disconnected_rejected(self):
        with pytest.raises(ValueError):
            AgentNetwork([(0, 1), (2, 3)])

    def test_single_agent(self):
        net = AgentNetwork([], nodes=[0])
        assert len(net) == 1
        assert net.diameter() == 0

    def test_neighbors_sorted(self):
        net = AgentNetwork([(0, 2), (0, 1)])
        assert net.neighbors(0) == [1, 2]

    def test_contains(self):
        net = AgentNetwork([(0, 1)])
        assert 0 in net
        assert 5 not in net


class TestTopologies:
    def test_complete_diameter(self):
        assert AgentNetwork.complete(5).diameter() == 1

    def test_complete_edge_count(self):
        assert len(list(AgentNetwork.complete(4).edges())) == 6

    def test_line_diameter(self):
        assert AgentNetwork.line(6).diameter() == 5

    def test_ring_diameter(self):
        assert AgentNetwork.ring(6).diameter() == 3

    def test_ring_minimum_size(self):
        with pytest.raises(ValueError):
            AgentNetwork.ring(2)

    def test_star_diameter(self):
        assert AgentNetwork.star(5).diameter() == 2

    def test_star_hub_degree(self):
        net = AgentNetwork.star(5)
        assert len(net.neighbors(0)) == 4

    def test_single_node_factories(self):
        assert len(AgentNetwork.complete(1)) == 1
        assert len(AgentNetwork.line(1)) == 1

    def test_zero_agents_rejected(self):
        with pytest.raises(ValueError):
            AgentNetwork.complete(0)

    @given(st.integers(min_value=2, max_value=12), st.integers(0, 100))
    @settings(max_examples=30, deadline=None)
    def test_random_connected_is_connected(self, n, seed):
        net = AgentNetwork.random_connected(n, seed=seed)
        assert len(net) == n
        assert net.diameter() >= 1  # connectivity implied by construction

    def test_random_deterministic_per_seed(self):
        a = AgentNetwork.random_connected(8, seed=42)
        b = AgentNetwork.random_connected(8, seed=42)
        assert list(a.edges()) == list(b.edges())
