"""Tests for the synchronous and asynchronous protocol engines."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mca import (
    AgentNetwork,
    AgentPolicy,
    AsynchronousEngine,
    GeometricUtility,
    Outcome,
    RebidStrategy,
    SynchronousEngine,
    consensus_report,
    detect_cycle,
    example1_engine,
    example1_expected_allocation,
    figure2_engine,
    max_consensus_target,
    message_bound,
)


def honest_policies(n_agents, items, seed_base=0, target=2, growth=0.5):
    """Distinct-valued honest policies (distinct bids avoid tie storms)."""
    policies = {}
    for a in range(n_agents):
        base = {
            item: 10 + 7 * a + 3 * k + seed_base
            for k, item in enumerate(items)
        }
        policies[a] = AgentPolicy(
            utility=GeometricUtility(base, growth=growth), target=target
        )
    return policies


class TestExample1:
    def test_converges_to_paper_allocation(self):
        engine = example1_engine()
        result = engine.run()
        assert result.converged
        assert result.allocation == example1_expected_allocation()

    def test_final_bids_are_componentwise_max(self):
        engine = example1_engine()
        engine.run()
        agent = engine.agents[0]
        assert agent.beliefs["A"].bid == 20
        assert agent.beliefs["B"].bid == 15
        assert agent.beliefs["C"].bid == 30

    def test_consensus_predicate_holds(self):
        engine = example1_engine()
        engine.run()
        assert consensus_report(engine.agents).consensus


class TestFigure2:
    def test_submodular_release_converges(self):
        result = figure2_engine(submodular=True, release_outbid=True).run()
        assert result.converged
        assert result.allocation == {"VN1": 0, "VN2": 1}

    def test_non_submodular_release_oscillates(self):
        result = figure2_engine(submodular=False, release_outbid=True).run(50)
        assert result.oscillated
        assert result.cycle_length is not None and result.cycle_length >= 2

    def test_non_submodular_keep_converges(self):
        result = figure2_engine(submodular=False, release_outbid=False).run(50)
        assert result.converged

    def test_submodular_keep_converges(self):
        result = figure2_engine(submodular=True, release_outbid=False).run(50)
        assert result.converged

    def test_oscillation_visible_in_trace(self):
        result = figure2_engine(submodular=False, release_outbid=True).run(50)
        cycle = detect_cycle(result.trace)
        assert cycle is not None


class TestSynchronousEngine:
    def test_single_agent_wins_everything(self):
        net = AgentNetwork.complete(1)
        items = ["A", "B"]
        policies = honest_policies(1, items)
        result = SynchronousEngine(net, items, policies).run()
        assert result.converged
        assert set(result.allocation.values()) == {0}

    def test_more_items_than_capacity_leaves_unassigned(self):
        net = AgentNetwork.complete(2)
        items = ["A", "B", "C", "D", "E", "F"]
        policies = honest_policies(2, items, target=1)
        engine = SynchronousEngine(net, items, policies)
        result = engine.run()
        assert result.converged
        assigned = [w for w in result.allocation.values() if w is not None]
        assert len(assigned) == 2  # one per agent

    def test_missing_policy_rejected(self):
        net = AgentNetwork.complete(2)
        with pytest.raises(ValueError):
            SynchronousEngine(net, ["A"], {0: honest_policies(1, ["A"])[0]})

    def test_conflict_free_allocations(self):
        net = AgentNetwork.line(3)
        items = ["A", "B", "C"]
        engine = SynchronousEngine(net, items, honest_policies(3, items))
        result = engine.run()
        assert result.converged
        report = consensus_report(engine.agents)
        assert report.conflict_free
        assert report.views_agree

    def test_message_count_grows_with_rounds(self):
        net = AgentNetwork.line(4)
        items = ["A", "B"]
        engine = SynchronousEngine(net, items, honest_policies(4, items))
        result = engine.run()
        assert result.messages_processed > 0

    @pytest.mark.parametrize("topology", ["complete", "line", "ring", "star"])
    def test_honest_submodular_always_converges(self, topology):
        factory = getattr(AgentNetwork, topology)
        net = factory(4)
        items = ["A", "B", "C"]
        engine = SynchronousEngine(net, items, honest_policies(4, items))
        result = engine.run()
        assert result.converged
        assert consensus_report(engine.agents).consensus

    def test_convergence_within_message_bound_rounds(self):
        """Consensus within D*|J| rounds (paper's val bound)."""
        for n, topo in [(3, AgentNetwork.line), (5, AgentNetwork.ring),
                        (4, AgentNetwork.star)]:
            net = topo(n)
            items = ["A", "B", "C"]
            engine = SynchronousEngine(net, items, honest_policies(n, items))
            result = engine.run()
            assert result.converged
            bound = message_bound(net, items)
            # +1 round for the quiescence check that detects convergence.
            assert result.rounds <= bound + 1


class TestAsynchronousEngine:
    def test_fifo_converges(self):
        net = AgentNetwork.line(3)
        items = ["A", "B"]
        engine = AsynchronousEngine(net, items, honest_policies(3, items))
        result = engine.run()
        assert result.converged
        assert consensus_report(engine.agents).consensus

    @pytest.mark.parametrize("seed", range(8))
    def test_random_schedules_converge(self, seed):
        net = AgentNetwork.ring(4)
        items = ["A", "B", "C"]
        engine = AsynchronousEngine(
            net, items, honest_policies(4, items), scheduler="random", seed=seed
        )
        result = engine.run()
        assert result.converged
        assert consensus_report(engine.agents).consensus

    def test_schedules_agree_on_allocation(self):
        net = AgentNetwork.line(3)
        items = ["A", "B"]
        allocations = []
        for seed in range(5):
            engine = AsynchronousEngine(
                net, items, honest_policies(3, items),
                scheduler="random", seed=seed,
            )
            engine.run()
            allocations.append(tuple(sorted(engine.agents[0].beliefs[j].winner
                                            for j in items)))
        assert len(set(allocations)) == 1

    def test_unknown_scheduler_rejected(self):
        net = AgentNetwork.complete(2)
        with pytest.raises(ValueError):
            AsynchronousEngine(net, ["A"], honest_policies(2, ["A"]),
                               scheduler="chaotic")

    def test_message_cap(self):
        net = AgentNetwork.complete(2)
        items = ["A"]
        policies = {
            0: AgentPolicy(utility=GeometricUtility({"A": 10}, 0.5)),
            1: AgentPolicy(utility=GeometricUtility({"A": 1}, 0.5),
                           rebid=RebidStrategy.FLIPFLOP),
        }
        engine = AsynchronousEngine(net, items, policies)
        result = engine.run(max_messages=5)
        assert result.outcome in (Outcome.EXHAUSTED, Outcome.OSCILLATION)


class TestAttacks:
    def test_flipflop_attack_prevents_convergence(self):
        net = AgentNetwork.complete(2)
        items = ["A"]
        policies = {
            0: AgentPolicy(utility=GeometricUtility({"A": 10}, 0.5)),
            1: AgentPolicy(utility=GeometricUtility({"A": 1}, 0.5),
                           rebid=RebidStrategy.FLIPFLOP),
        }
        result = SynchronousEngine(net, items, policies).run(100)
        assert result.oscillated

    def test_escalate_attack_hijacks_allocation(self):
        net = AgentNetwork.complete(2)
        items = ["A"]
        policies = {
            0: AgentPolicy(utility=GeometricUtility({"A": 10}, 0.5)),
            1: AgentPolicy(utility=GeometricUtility({"A": 1}, 0.5),
                           rebid=RebidStrategy.ESCALATE),
        }
        result = SynchronousEngine(net, items, policies).run(100)
        assert result.converged
        assert result.allocation == {"A": 1}  # attacker stole the item

    def test_all_honest_baseline_converges(self):
        net = AgentNetwork.complete(2)
        items = ["A"]
        policies = {
            0: AgentPolicy(utility=GeometricUtility({"A": 10}, 0.5)),
            1: AgentPolicy(utility=GeometricUtility({"A": 1}, 0.5)),
        }
        result = SynchronousEngine(net, items, policies).run(100)
        assert result.converged
        assert result.allocation == {"A": 0}


class TestMaxConsensus:
    def test_target_is_componentwise_max(self):
        bids = {0: {"A": 3.0, "B": 9.0}, 1: {"A": 7.0, "B": 2.0}}
        assert max_consensus_target(bids) == {"A": 7.0, "B": 9.0}

    @given(st.integers(min_value=2, max_value=5), st.integers(0, 50))
    @settings(max_examples=25, deadline=None)
    def test_final_bid_is_max_of_initial_bids(self, n_agents, seed):
        """Definition 1 / Eq. (2): after convergence every agent's bid
        vector equals the component-wise maximum of the placed bids."""
        items = ["A", "B"]
        net = AgentNetwork.line(n_agents)
        policies = honest_policies(n_agents, items, seed_base=seed, target=1)
        engine = SynchronousEngine(net, items, policies)
        result = engine.run()
        assert result.converged
        # The winning bid per item must equal the max first-slot utility.
        for item in items:
            placed = [
                policies[a].utility.marginal(item, [])
                for a in range(n_agents)
            ]
            winning = engine.agents[0].beliefs[item].bid
            # Winners bid their top item first; for the second item the max
            # *placed* bid wins, which is at most max utility.
            assert winning <= max(placed)
            assert winning > 0
