"""Tests for the agent's bidding and agreement behaviour."""

from repro.mca.agent import Agent
from repro.mca.items import ItemBelief, Timestamp
from repro.mca.messages import BidMessage
from repro.mca.policies import AgentPolicy, GeometricUtility, RebidStrategy, TableUtility

ITEMS = ["A", "B", "C"]


def make_agent(agent_id=0, base=None, growth=0.5, target=2,
               release=False, rebid=RebidStrategy.HONEST):
    base = base if base is not None else {"A": 10, "B": 8, "C": 6}
    policy = AgentPolicy(
        utility=GeometricUtility(base, growth=growth),
        target=target,
        release_outbid=release,
        rebid=rebid,
    )
    return Agent(agent_id, policy, ITEMS)


def message_from(sender_id, view, clock=10):
    return BidMessage.from_view(sender_id, 0, view, clock)


class TestBiddingPhase:
    def test_greedy_order(self):
        agent = make_agent()
        agent.bid_phase()
        assert agent.bundle == ["A", "B"]  # highest marginal first

    def test_target_respected(self):
        agent = make_agent(target=1)
        agent.bid_phase()
        assert agent.bundle == ["A"]

    def test_zero_target_no_bids(self):
        agent = make_agent(target=0)
        assert not agent.bid_phase()
        assert agent.bundle == []

    def test_bids_recorded_in_beliefs(self):
        agent = make_agent()
        agent.bid_phase()
        assert agent.beliefs["A"].winner == 0
        assert agent.beliefs["A"].bid == 10

    def test_submodular_marginals_shrink(self):
        agent = make_agent()
        agent.bid_phase()
        assert agent.beliefs["B"].bid == 4  # 8 * 0.5

    def test_does_not_bid_below_known_winner(self):
        agent = make_agent()
        agent.beliefs["A"] = ItemBelief(5, 100, Timestamp(1, 5), 5)
        agent.bid_phase()
        assert "A" not in agent.bundle

    def test_equal_bid_tiebreak_lower_id_claims(self):
        agent = make_agent(agent_id=0)
        agent.beliefs["A"] = ItemBelief(5, 10, Timestamp(1, 5), 5)
        agent.bid_phase()
        assert "A" in agent.bundle  # 10 == 10 but id 0 < 5

    def test_equal_bid_tiebreak_higher_id_defers(self):
        agent = make_agent(agent_id=9)
        agent.beliefs["A"] = ItemBelief(5, 10, Timestamp(1, 5), 5)
        agent.bid_phase()
        assert "A" not in agent.bundle

    def test_idempotent_when_no_opportunity(self):
        agent = make_agent()
        agent.bid_phase()
        assert not agent.bid_phase()


class TestAgreement:
    def test_adopts_higher_bid(self):
        agent = make_agent()
        agent.bid_phase()
        incoming = {
            "A": ItemBelief(1, 50, Timestamp(2, 1), 1),
            "B": ItemBelief.unassigned(),
            "C": ItemBelief.unassigned(),
        }
        changed = agent.receive(message_from(1, incoming))
        assert changed
        assert agent.beliefs["A"].winner == 1

    def test_outbid_removes_from_bundle(self):
        agent = make_agent()
        agent.bid_phase()
        incoming = {"A": ItemBelief(1, 50, Timestamp(2, 1), 1)}
        agent.receive(message_from(1, incoming))
        assert "A" not in agent.bundle

    def test_keep_policy_retains_subsequent_items(self):
        agent = make_agent(release=False)
        agent.bid_phase()
        assert agent.bundle == ["A", "B"]
        agent.receive(message_from(1, {"A": ItemBelief(1, 50, Timestamp(2, 1), 1)}))
        assert agent.bundle == ["B"]
        assert agent.beliefs["B"].winner == 0

    def test_release_policy_releases_subsequent_items(self):
        agent = make_agent(release=True)
        agent.bid_phase()
        agent.receive(message_from(1, {"A": ItemBelief(1, 50, Timestamp(2, 1), 1)}))
        assert agent.bundle == []
        assert agent.beliefs["B"].winner is None  # released (Remark 2)

    def test_outbid_on_last_item_releases_nothing(self):
        agent = make_agent(release=True)
        agent.bid_phase()
        agent.receive(message_from(1, {"B": ItemBelief(1, 50, Timestamp(2, 1), 1)}))
        assert agent.bundle == ["A"]
        assert agent.beliefs["A"].winner == 0

    def test_outbid_log_records_events(self):
        agent = make_agent(release=True)
        agent.bid_phase()
        agent.receive(message_from(1, {"A": ItemBelief(1, 50, Timestamp(2, 1), 1)}))
        assert len(agent.outbid_log) == 1
        event = agent.outbid_log[0]
        assert event.item == "A"
        assert event.new_winner == 1
        assert event.released == ("B",)

    def test_clock_advances_past_message(self):
        agent = make_agent()
        agent.receive(message_from(1, {"A": ItemBelief(1, 5, Timestamp(2, 1), 1)},
                                   clock=100))
        assert agent.clock > 100

    def test_unknown_items_ignored(self):
        agent = make_agent()
        incoming = {"Z": ItemBelief(1, 50, Timestamp(2, 1), 1)}
        assert not agent.receive(message_from(1, incoming))

    def test_own_stale_claim_echo_rejected_after_release(self):
        agent = make_agent(release=True)
        agent.bid_phase()
        old_claim_b = agent.beliefs["B"]
        agent.receive(message_from(1, {"A": ItemBelief(1, 50, Timestamp(2, 1), 1)}))
        assert agent.beliefs["B"].winner is None
        # A neighbor echoes the agent's own pre-release claim on B.
        assert not agent.receive(message_from(1, {"B": old_claim_b}))
        assert agent.beliefs["B"].winner is None


class TestMaliciousStrategies:
    def test_escalate_overbids_lost_items(self):
        agent = make_agent(rebid=RebidStrategy.ESCALATE,
                           base={"A": 1, "B": 0, "C": 0})
        agent.receive(message_from(1, {"A": ItemBelief(1, 50, Timestamp(2, 1), 1)}))
        agent.bid_phase()
        assert agent.beliefs["A"].winner == 0
        assert agent.beliefs["A"].bid == 51

    def test_escalate_respects_bid_cap(self):
        policy = AgentPolicy(
            utility=TableUtility({}), rebid=RebidStrategy.ESCALATE,
            extra={"bid_cap": 10},
        )
        agent = Agent(0, policy, ITEMS)
        agent.receive(message_from(1, {"A": ItemBelief(1, 50, Timestamp(2, 1), 1)}))
        agent.bid_phase()
        assert agent.beliefs["A"].winner == 1  # 51 > cap: attack throttled

    def test_flipflop_claims_then_releases(self):
        agent = make_agent(rebid=RebidStrategy.FLIPFLOP,
                           base={"A": 1, "B": 0, "C": 0})
        agent.receive(message_from(1, {"A": ItemBelief(1, 50, Timestamp(2, 1), 1)}))
        agent.bid_phase()
        assert agent.beliefs["A"].winner == 0  # hijacked
        agent.bid_phase()
        assert agent.beliefs["A"].winner is None  # released again

    def test_honest_never_overbids_beyond_utility(self):
        agent = make_agent(base={"A": 10, "B": 0, "C": 0})
        agent.receive(message_from(1, {"A": ItemBelief(1, 50, Timestamp(2, 1), 1)}))
        agent.bid_phase()
        assert agent.beliefs["A"].winner == 1  # utility 10 < 50: no rebid


class TestViewSignature:
    def test_signature_ignores_timestamps(self):
        a = make_agent()
        b = make_agent()
        a.bid_phase()
        b.bid_phase()
        b.clock += 100  # different clocks, same logical view
        assert a.view_signature() == b.view_signature()

    def test_signature_reflects_bundle(self):
        a = make_agent(target=1)
        b = make_agent(target=2)
        a.bid_phase()
        b.bid_phase()
        assert a.view_signature() != b.view_signature()
