"""Property-based protocol invariants under randomized scenarios.

These are the paper's implicit correctness conditions, checked over random
topologies, utilities and message schedules:

* honest sub-modular runs always converge, conflict-free, within the bound;
* final winning bids equal the component-wise max of placed bids (Def. 1);
* out-of-order message delivery never breaks agreement (the time-stamp
  mechanism of Section II-A);
* bundles never exceed targets; winners are consistent with allocations.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mca import (
    AgentNetwork,
    AgentPolicy,
    AsynchronousEngine,
    GeometricUtility,
    SynchronousEngine,
    consensus_report,
    message_bound,
    round_bound,
)


@st.composite
def honest_scenarios(draw):
    n_agents = draw(st.integers(min_value=2, max_value=5))
    n_items = draw(st.integers(min_value=1, max_value=4))
    topology = draw(st.sampled_from(["complete", "line", "star", "random"]))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    if topology == "random":
        network = AgentNetwork.random_connected(n_agents, seed=seed)
    elif topology == "star":
        network = AgentNetwork.star(n_agents)
    elif topology == "line":
        network = AgentNetwork.line(n_agents)
    else:
        network = AgentNetwork.complete(n_agents)
    items = [f"i{k}" for k in range(n_items)]
    rng = random.Random(seed)
    target = draw(st.integers(min_value=1, max_value=3))
    policies = {}
    used_values: set[int] = set()
    for a in network.agents():
        base = {}
        for item in items:
            # Distinct base utilities avoid tie-storms in expectations.
            value = rng.randint(1, 1000)
            while value in used_values:
                value = rng.randint(1, 1000)
            used_values.add(value)
            base[item] = value
        policies[a] = AgentPolicy(
            utility=GeometricUtility(base, growth=0.5), target=target
        )
    return network, items, policies


class TestHonestInvariants:
    @given(honest_scenarios())
    @settings(max_examples=40, deadline=None)
    def test_convergence_conflict_freedom_and_bound(self, scenario):
        # The D*|J| message bound does not cap *rounds* once bundle
        # targets exceed 1: an outbid empties a bundle and raises a
        # first-slot marginal, starting a re-auction wave.  round_bound
        # adds one wave term per bundle slot.
        network, items, policies = scenario
        targets = {a: p.target for a, p in policies.items()}
        bound = round_bound(network, items, targets)
        engine = SynchronousEngine(network, items, policies)
        result = engine.run(max_rounds=bound + 2)
        assert result.converged
        report = consensus_report(engine.agents)
        assert report.consensus
        assert result.rounds <= bound

    @given(honest_scenarios())
    @settings(max_examples=25, deadline=None)
    def test_bundles_respect_targets(self, scenario):
        network, items, policies = scenario
        engine = SynchronousEngine(network, items, policies)
        engine.run()
        for agent in engine.agents.values():
            assert len(agent.bundle) <= agent.policy.target

    @given(honest_scenarios())
    @settings(max_examples=25, deadline=None)
    def test_winners_consistent_with_bundles(self, scenario):
        network, items, policies = scenario
        engine = SynchronousEngine(network, items, policies)
        result = engine.run()
        assert result.converged
        for item, winner in result.allocation.items():
            if winner is None:
                continue
            assert item in engine.agents[winner].bundle

    @given(honest_scenarios())
    @settings(max_examples=25, deadline=None)
    def test_submodular_bids_never_exceed_first_slot_utility(self, scenario):
        """With growth < 1 every placed bid is at most the base utility."""
        network, items, policies = scenario
        engine = SynchronousEngine(network, items, policies)
        engine.run()
        for item in items:
            max_base = max(
                policies[a].utility.marginal(item, []) for a in network.agents()
            )
            final = engine.agents[network.agents()[0]].beliefs[item].bid
            assert final <= max_base


class TestAsynchronousInvariants:
    @given(honest_scenarios(), st.integers(min_value=0, max_value=50))
    @settings(max_examples=30, deadline=None)
    def test_random_schedules_converge_consistently(self, scenario, seed):
        """Out-of-order delivery (random scheduler) must still converge to
        the same allocation as FIFO: the timestamp mechanism at work."""
        network, items, policies = scenario
        fifo = AsynchronousEngine(network, items, policies, scheduler="fifo")
        fifo_result = fifo.run(max_messages=20_000)
        shuffled = AsynchronousEngine(network, items, policies,
                                      scheduler="random", seed=seed)
        shuffled_result = shuffled.run(max_messages=20_000)
        assert fifo_result.converged
        assert shuffled_result.converged
        assert fifo_result.allocation == shuffled_result.allocation
        assert consensus_report(shuffled.agents).consensus
