"""Tests for timestamps and item beliefs."""

from repro.mca.items import ItemBelief, Timestamp, ZERO_TIME


class TestTimestamp:
    def test_ordering_by_counter(self):
        assert Timestamp(1, 5) < Timestamp(2, 0)

    def test_tie_break_by_agent(self):
        assert Timestamp(1, 0) < Timestamp(1, 1)

    def test_next_for(self):
        ts = Timestamp(3, 0).next_for(2)
        assert ts == Timestamp(4, 2)

    def test_zero_time_is_minimal(self):
        assert ZERO_TIME < Timestamp(1, 0)


class TestItemBelief:
    def test_unassigned(self):
        belief = ItemBelief.unassigned()
        assert belief.winner is None
        assert belief.bid == 0.0
        assert not belief.is_claim()

    def test_claim(self):
        belief = ItemBelief(winner=2, bid=10.0, time=Timestamp(1, 2), origin=2)
        assert belief.is_claim()

    def test_higher_bid_beats(self):
        low = ItemBelief(1, 10.0, Timestamp(1, 1), 1)
        high = ItemBelief(2, 20.0, Timestamp(1, 2), 2)
        assert high.beats(low)
        assert not low.beats(high)

    def test_equal_bid_lower_id_wins(self):
        a = ItemBelief(1, 10.0, Timestamp(1, 1), 1)
        b = ItemBelief(2, 10.0, Timestamp(1, 2), 2)
        assert a.beats(b)
        assert not b.beats(a)

    def test_claim_beats_unassigned(self):
        claim = ItemBelief(1, 5.0, Timestamp(1, 1), 1)
        assert claim.beats(ItemBelief.unassigned())

    def test_unassigned_never_beats(self):
        claim = ItemBelief(1, 5.0, Timestamp(1, 1), 1)
        assert not ItemBelief.unassigned().beats(claim)

    def test_beats_is_asymmetric_for_distinct_claims(self):
        a = ItemBelief(1, 10.0, Timestamp(1, 1), 1)
        b = ItemBelief(2, 12.0, Timestamp(1, 2), 2)
        assert a.beats(b) != b.beats(a)
