"""Tests for the asynchronous conflict-resolution table."""

from repro.mca.conflict import ConflictResolver
from repro.mca.items import ItemBelief, Timestamp


def claim(winner, bid, counter, origin=None):
    origin = winner if origin is None else origin
    return ItemBelief(winner, bid, Timestamp(counter, origin), origin)


def reset(origin, counter):
    return ItemBelief(None, 0.0, Timestamp(counter, origin), origin)


class TestClaims:
    def setup_method(self):
        self.resolver = ConflictResolver(agent_id=0)
        self.free = ItemBelief.unassigned()

    def test_claim_on_unassigned_adopted(self):
        out = self.resolver.resolve("j", self.free, claim(1, 10, 1))
        assert out.changed
        assert out.adopted.winner == 1

    def test_higher_bid_displaces(self):
        local = claim(1, 10, 1)
        out = self.resolver.resolve("j", local, claim(2, 20, 1))
        assert out.changed
        assert out.adopted.winner == 2

    def test_lower_bid_ignored(self):
        local = claim(1, 20, 1)
        out = self.resolver.resolve("j", local, claim(2, 10, 1))
        assert not out.changed
        assert out.adopted.winner == 1

    def test_equal_bid_lower_id_wins(self):
        local = claim(2, 10, 1)
        out = self.resolver.resolve("j", local, claim(1, 10, 1))
        assert out.changed
        assert out.adopted.winner == 1

    def test_same_winner_fresher_info_adopted(self):
        local = claim(1, 10, 1)
        out = self.resolver.resolve("j", local, claim(1, 4, 5))
        assert out.changed
        assert out.adopted.bid == 4  # bids may be refreshed downward

    def test_initial_belief_carries_no_information(self):
        local = claim(1, 10, 1)
        out = self.resolver.resolve("j", local, ItemBelief.unassigned())
        assert not out.changed


class TestStaleness:
    def setup_method(self):
        self.resolver = ConflictResolver(agent_id=0)

    def test_stale_from_same_origin_ignored(self):
        fresh = claim(1, 10, 5)
        out = self.resolver.resolve("j", ItemBelief.unassigned(), fresh)
        assert out.changed
        stale = claim(1, 99, 2)
        out = self.resolver.resolve("j", out.adopted, stale)
        assert not out.changed

    def test_duplicate_delivery_idempotent(self):
        incoming = claim(1, 10, 5)
        first = self.resolver.resolve("j", ItemBelief.unassigned(), incoming)
        second = self.resolver.resolve("j", first.adopted, incoming)
        assert first.changed
        assert not second.changed

    def test_staleness_tracked_per_item(self):
        self.resolver.resolve("j", ItemBelief.unassigned(), claim(1, 10, 5))
        out = self.resolver.resolve("k", ItemBelief.unassigned(), claim(1, 7, 2))
        assert out.changed  # older counter, but different item

    def test_staleness_tracked_per_origin(self):
        self.resolver.resolve("j", ItemBelief.unassigned(), claim(1, 10, 5))
        out = self.resolver.resolve("j", claim(1, 10, 5), claim(2, 20, 2))
        assert out.changed  # different origin, not stale


class TestResets:
    def setup_method(self):
        self.resolver = ConflictResolver(agent_id=0)

    def test_reset_by_current_winner_honoured(self):
        local = claim(1, 10, 1)
        out = self.resolver.resolve("j", local, reset(1, 3))
        assert out.changed
        assert out.adopted.winner is None

    def test_reset_by_other_agent_ignored(self):
        local = claim(1, 10, 1)
        out = self.resolver.resolve("j", local, reset(2, 3))
        assert not out.changed
        assert out.adopted.winner == 1

    def test_reset_then_stale_claim_rejected(self):
        """The crucial out-of-order case: a release must not be undone by a
        late-arriving echo of the old claim."""
        local = ItemBelief.unassigned()
        out = self.resolver.resolve("j", local, claim(1, 10, 2))
        out = self.resolver.resolve("j", out.adopted, reset(1, 6))
        assert out.adopted.winner is None
        late_echo = claim(1, 10, 2)
        out = self.resolver.resolve("j", out.adopted, late_echo)
        assert not out.changed
        assert out.adopted.winner is None

    def test_reclaim_after_reset_adopted(self):
        out = self.resolver.resolve("j", ItemBelief.unassigned(), claim(1, 10, 2))
        out = self.resolver.resolve("j", out.adopted, reset(1, 4))
        out = self.resolver.resolve("j", out.adopted, claim(1, 6, 7))
        assert out.adopted.winner == 1
        assert out.adopted.bid == 6

    def test_reset_on_unassigned_noop(self):
        out = self.resolver.resolve("j", ItemBelief.unassigned(), reset(1, 3))
        assert not out.changed
