"""Tests for utility functions and policies."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mca.policies import (
    AgentPolicy,
    GeometricUtility,
    RebidStrategy,
    ResidualCapacityUtility,
    TableUtility,
    non_submodular_policy,
    submodular_policy,
)

ITEMS = ["A", "B", "C"]


class TestGeometricUtility:
    def test_base_value_on_empty_bundle(self):
        u = GeometricUtility({"A": 10}, growth=0.5)
        assert u.marginal("A", []) == 10

    def test_diminishing(self):
        u = GeometricUtility({"A": 10}, growth=0.5)
        assert u.marginal("A", ["B"]) == 5
        assert u.marginal("A", ["B", "C"]) == 2.5

    def test_growing(self):
        u = GeometricUtility({"A": 10}, growth=2.0)
        assert u.marginal("A", ["B"]) == 20

    def test_unknown_item_zero(self):
        u = GeometricUtility({"A": 10}, growth=0.5)
        assert u.marginal("Z", []) == 0

    def test_invalid_growth(self):
        with pytest.raises(ValueError):
            GeometricUtility({}, growth=0)

    def test_submodularity_detection(self):
        shrinking = GeometricUtility({i: 10 for i in ITEMS}, growth=0.5)
        growing = GeometricUtility({i: 10 for i in ITEMS}, growth=2.0)
        flat = GeometricUtility({i: 10 for i in ITEMS}, growth=1.0)
        assert shrinking.is_submodular_on(ITEMS, 3)
        assert not growing.is_submodular_on(ITEMS, 3)
        assert flat.is_submodular_on(ITEMS, 3)

    @given(st.floats(min_value=0.1, max_value=1.0))
    @settings(max_examples=20, deadline=None)
    def test_growth_le_one_always_submodular(self, growth):
        u = GeometricUtility({i: 7 for i in ITEMS}, growth=growth)
        assert u.is_submodular_on(ITEMS, 3)


class TestTableUtility:
    def test_lookup(self):
        u = TableUtility({("A", 0): 10, ("A", 1): 30})
        assert u.marginal("A", []) == 10
        assert u.marginal("A", ["B"]) == 30

    def test_missing_defaults_zero(self):
        u = TableUtility({})
        assert u.marginal("A", []) == 0


class TestResidualCapacityUtility:
    def test_empty_bundle_full_capacity(self):
        u = ResidualCapacityUtility(100, {"A": 10})
        assert u.marginal("A", []) == 100

    def test_residual_shrinks(self):
        u = ResidualCapacityUtility(100, {"A": 10, "B": 30})
        assert u.marginal("A", ["B"]) == 70

    def test_zero_when_does_not_fit(self):
        u = ResidualCapacityUtility(25, {"A": 10, "B": 20})
        assert u.marginal("A", ["B"]) == 0

    def test_zero_demand_items_not_bid(self):
        u = ResidualCapacityUtility(100, {})
        assert u.marginal("A", []) == 0

    def test_is_submodular(self):
        u = ResidualCapacityUtility(100, {"A": 10, "B": 20, "C": 30})
        assert u.is_submodular_on(ITEMS, 3)

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            ResidualCapacityUtility(-1, {})


class TestAgentPolicy:
    def test_defaults(self):
        p = AgentPolicy(utility=TableUtility({}))
        assert p.target == 1
        assert p.release_outbid is False
        assert p.rebid is RebidStrategy.HONEST

    def test_negative_target_rejected(self):
        with pytest.raises(ValueError):
            AgentPolicy(utility=TableUtility({}), target=-1)

    def test_convenience_constructors(self):
        sub = submodular_policy({"A": 10})
        non = non_submodular_policy({"A": 10})
        assert sub.utility.is_submodular_on(["A", "B"], 2)
        assert not non.utility.is_submodular_on(["A", "B"], 2)
        assert non.release_outbid
