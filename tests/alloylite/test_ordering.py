"""Tests for the util/ordering equivalent."""

import pytest

from repro.alloylite import OrderedModule, Scope, run
from repro.kodkod import ast
from repro.kodkod.evaluator import Evaluator


@pytest.fixture
def ordered_module():
    m = OrderedModule()
    state = m.sig("State")
    order = m.ordering(state)
    return m, state, order


class TestOrdering:
    def test_next_is_linear(self, ordered_module):
        m, state, order = ordered_module
        result = run(m, scope=Scope(per_sig={"State": 4}))
        nxt = dict(result.instance.value_of(order.next))
        assert len(nxt) == 3
        # Chain: each atom except the last has exactly one successor.
        chain = ["State$0"]
        while chain[-1] in nxt:
            chain.append(nxt[chain[-1]])
        assert len(chain) == 4

    def test_first_and_last(self, ordered_module):
        m, state, order = ordered_module
        result = run(m, scope=Scope(per_sig={"State": 3}))
        assert set(result.instance.value_of(order.first)) == {("State$0",)}
        assert set(result.instance.value_of(order.last)) == {("State$2",)}

    def test_single_state_has_empty_next(self, ordered_module):
        m, state, order = ordered_module
        result = run(m, scope=Scope(per_sig={"State": 1}))
        assert len(result.instance.value_of(order.next)) == 0
        assert set(result.instance.value_of(order.first)) == {("State$0",)}
        assert set(result.instance.value_of(order.last)) == {("State$0",)}

    def test_lt_and_lte(self, ordered_module):
        m, state, order = ordered_module
        result = run(m, scope=Scope(per_sig={"State": 3}))
        ev = Evaluator(result.instance)
        s = ast.Variable("s")
        # first < last
        assert ev.check(order.lt(order.first, order.last))
        # not (last < first)
        assert not ev.check(order.lt(order.last, order.first))
        # first <= first
        assert ev.check(order.lte(order.first, order.first))
        # not (first < first)
        assert not ev.check(order.lt(order.first, order.first))
        del s

    def test_nexts_prevs(self, ordered_module):
        m, state, order = ordered_module
        result = run(m, scope=Scope(per_sig={"State": 3}))
        ev = Evaluator(result.instance)
        later = ev.tuples(order.nexts(order.first))
        assert set(later) == {("State$1",), ("State$2",)}
        earlier = ev.tuples(order.prevs(order.last))
        assert set(earlier) == {("State$0",), ("State$1",)}

    def test_ordering_on_subsig_rejected(self):
        m = OrderedModule()
        a = m.sig("A")
        b = m.sig("B", parent=a)
        with pytest.raises(ValueError):
            m.ordering(b)

    def test_transition_system_fact(self, ordered_module):
        """A counter that must increase along the order: the classic dynamic
        model idiom the MCA dynamic sub-model uses."""
        m, state, order = ordered_module
        flag = m.sig("Flag")
        holds = state.field("holds", flag, mult="set")
        s = ast.Variable("s")
        s2 = ast.Variable("s2")
        # Monotone: whatever holds at s still holds at s.next.
        m.fact(
            ast.ForAll(
                [(s, state.expr)],
                ast.ForAll(
                    [(s2, ast.Join(s, order.next))],
                    ast.Subset(
                        ast.Join(s, holds.expr),
                        ast.Join(s2, holds.expr),
                    ),
                ),
            ),
            "monotone",
        )
        # Something holds at first, nothing is lost.
        m.fact(ast.Some(ast.Join(order.first, holds.expr)), "init")
        result = run(m, scope=Scope(per_sig={"State": 3, "Flag": 2}))
        assert result.satisfiable
        inst = result.instance
        by_state = {}
        for st_atom, fl_atom in inst.value_of(holds.relation):
            by_state.setdefault(st_atom, set()).add(fl_atom)
        assert by_state.get("State$0", set()) <= by_state.get("State$1", set())
        assert by_state.get("State$1", set()) <= by_state.get("State$2", set())
