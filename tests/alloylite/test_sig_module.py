"""Tests for sigs, fields, modules and scopes."""

import pytest

from repro.alloylite import Module, ModuleError, Scope, check, iter_instances, run
from repro.kodkod import ast


class TestSigDeclaration:
    def test_duplicate_sig_rejected(self):
        m = Module()
        m.sig("A")
        with pytest.raises(ModuleError):
            m.sig("A")

    def test_sig_expr_is_relation(self):
        m = Module()
        a = m.sig("A")
        assert isinstance(a.expr, ast.Relation)
        assert a.expr.arity == 1

    def test_field_arity(self):
        m = Module()
        a = m.sig("A")
        b = m.sig("B")
        f = a.field("f", b)
        assert f.relation.arity == 2
        g = a.field("g", b, b)
        assert g.relation.arity == 3

    def test_field_needs_columns(self):
        m = Module()
        a = m.sig("A")
        with pytest.raises(ValueError):
            a.field("f")

    def test_bad_multiplicity_rejected(self):
        m = Module()
        a = m.sig("A")
        b = m.sig("B")
        with pytest.raises(ValueError):
            a.field("f", b, mult="two")

    def test_top_level(self):
        m = Module()
        a = m.sig("A")
        b = m.sig("B", parent=a)
        c = m.sig("C", parent=b)
        assert c.top_level() is a


class TestScopes:
    def test_default_scope(self):
        scope = Scope(default=4)
        m = Module()
        a = m.sig("A")
        assert scope.count_for(a) == 4

    def test_per_sig_override(self):
        scope = Scope(default=4, per_sig={"A": 2})
        m = Module()
        a = m.sig("A")
        b = m.sig("B")
        assert scope.count_for(a) == 2
        assert scope.count_for(b) == 4

    def test_one_sig_always_single(self):
        scope = Scope(default=5)
        m = Module()
        null = m.sig("NULL", is_one=True)
        assert scope.count_for(null) == 1

    def test_zero_scope_rejected(self):
        m = Module()
        m.sig("A")
        with pytest.raises(ModuleError):
            run(m, scope=Scope(per_sig={"A": 0}))


class TestCompilation:
    def test_universe_contains_all_sig_atoms(self):
        m = Module()
        m.sig("A")
        m.sig("B")
        universe, _, _ = m.compile(Scope(per_sig={"A": 2, "B": 3}))
        assert len(universe) == 5
        assert "A$0" in universe and "B$2" in universe

    def test_sigs_disjoint(self):
        m = Module()
        a = m.sig("A")
        b = m.sig("B")
        result = run(m, scope=Scope(per_sig={"A": 2, "B": 2}))
        atoms_a = {t[0] for t in result.instance.value_of(a.relation)}
        atoms_b = {t[0] for t in result.instance.value_of(b.relation)}
        assert not (atoms_a & atoms_b)

    def test_subsig_within_parent(self):
        m = Module()
        a = m.sig("A")
        b = m.sig("B", parent=a)
        result = run(m, scope=Scope(per_sig={"A": 3, "B": 1}))
        atoms_a = {t[0] for t in result.instance.value_of(a.relation)}
        atoms_b = {t[0] for t in result.instance.value_of(b.relation)}
        assert atoms_b <= atoms_a
        assert len(atoms_b) == 1

    def test_subsig_overflow_rejected(self):
        m = Module()
        m.sig("A")
        a = m.sigs[0]
        m.sig("B", parent=a)
        m.sig("C", parent=a)
        with pytest.raises(ModuleError):
            run(m, scope=Scope(per_sig={"A": 1, "B": 1, "C": 1}))

    def test_abstract_sig_equals_children(self):
        m = Module()
        a = m.sig("A", abstract=True)
        b = m.sig("B", parent=a)
        c = m.sig("C", parent=a)
        result = run(m, scope=Scope(per_sig={"A": 4, "B": 2, "C": 2}))
        atoms_a = set(result.instance.value_of(a.relation))
        atoms_b = set(result.instance.value_of(b.relation))
        atoms_c = set(result.instance.value_of(c.relation))
        assert atoms_a == atoms_b | atoms_c


class TestMultiplicities:
    def _module_with_field(self, mult):
        m = Module()
        a = m.sig("A")
        b = m.sig("B")
        f = a.field("f", b, mult=mult)
        return m, a, b, f

    def test_one_field_total_function(self):
        m, a, b, f = self._module_with_field("one")
        result = run(m, scope=Scope(per_sig={"A": 2, "B": 3}))
        mapping = {}
        for owner, target in result.instance.value_of(f.relation):
            mapping.setdefault(owner, []).append(target)
        atoms_a = {t[0] for t in result.instance.value_of(a.relation)}
        assert set(mapping) == atoms_a
        assert all(len(v) == 1 for v in mapping.values())

    def test_lone_field_partial_function(self):
        m, a, b, f = self._module_with_field("lone")
        for inst in iter_instances(m, scope=Scope(per_sig={"A": 1, "B": 2})):
            images = [t for t in inst.value_of(f.relation)]
            assert len(images) <= 1

    def test_some_field_nonempty(self):
        m, a, b, f = self._module_with_field("some")
        for inst in iter_instances(
            m, scope=Scope(per_sig={"A": 1, "B": 2}), limit=10
        ):
            assert len(inst.value_of(f.relation)) >= 1

    def test_set_field_unconstrained(self):
        m, a, b, f = self._module_with_field("set")
        count = sum(
            1 for _ in iter_instances(m, scope=Scope(per_sig={"A": 1, "B": 2}))
        )
        assert count == 4  # 2^2 subsets

    def test_field_typing_respected(self):
        m, a, b, f = self._module_with_field("set")
        for inst in iter_instances(
            m, scope=Scope(per_sig={"A": 2, "B": 2}), limit=20
        ):
            atoms_a = {t[0] for t in inst.value_of(a.relation)}
            atoms_b = {t[0] for t in inst.value_of(b.relation)}
            for owner, target in inst.value_of(f.relation):
                assert owner in atoms_a
                assert target in atoms_b


class TestRunAndCheck:
    def test_unsatisfiable_fact_reported(self):
        m = Module()
        a = m.sig("A")
        m.fact(ast.No(a.expr), "empty")  # contradicts exact scope >= 1
        result = run(m, scope=Scope(per_sig={"A": 1}))
        assert not result.satisfiable
        assert result.describe() == "no instance found"

    def test_check_valid_assertion(self):
        m = Module()
        a = m.sig("A")
        result = check(m, ast.Some(a.expr), scope=Scope(per_sig={"A": 2}))
        assert result.valid
        assert "holds" in result.describe()

    def test_check_invalid_assertion_gives_counterexample(self):
        m = Module()
        a = m.sig("A")
        b = m.sig("B")
        f = a.field("f", b, mult="set")
        assertion = ast.Some(f.expr)  # fields may be empty: refutable
        result = check(m, assertion, scope=Scope(per_sig={"A": 1, "B": 1}))
        assert not result.valid
        assert result.counterexample is not None
        assert len(result.counterexample.value_of(f.relation)) == 0
        assert "counterexample" in result.describe()

    def test_stats_populated(self):
        m = Module()
        a = m.sig("A")
        b = m.sig("B")
        a.field("f", b, mult="one")
        result = run(m, scope=Scope(per_sig={"A": 2, "B": 2}))
        assert result.stats.num_primary_vars == 4
        assert result.stats.num_clauses > 0
        assert result.total_seconds >= result.solve_seconds
